//! The daemon: listeners, acceptor threads, the bounded job queue, and the
//! counters block behind `STATUS`.
//!
//! Life of a request: an acceptor thread accepts the connection, reads one
//! frame, and either answers inline (`STATUS`, `SHUTDOWN` — always
//! serviceable, even with a full queue) or wraps the connection + request
//! into a [`Job`](crate::pool::Job) and `try_push`es it onto the bounded
//! queue. A full queue yields an immediate `BUSY` reply — the request was
//! *refused*, never accepted-then-dropped. Workers drain the queue (see
//! [`crate::pool`]); `SHUTDOWN` (or [`Server::shutdown`], which the CLI
//! wires to SIGINT) stops the acceptors, closes the queue, and lets the
//! workers finish every accepted job before [`Server::join`] returns.

use crate::cache::{CacheOutcome, ModelCache};
use crate::pool::{spawn_workers, BatchPolicy, Job, Responder, Work};
use crate::proto::{
    encode_frame, read_frame, write_frame, ModelSpec, Reply, Request, SESSION_VERSION, VERSION,
};
use act_fleet::BoundedQueue;
use act_obs::{events, latency_bounds_us, Counter, Gauge, Histogram, Level, Registry};
use act_store::Crc32;
use act_trace::io::{parse_record_line, TraceBuilder, TraceSink, MAX_CODE_LEN};
use act_trace::Trace;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long acceptors sleep between polls of an idle listener (they poll so
/// the shutdown flag is noticed without a wakeup connection).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How long a session reader blocks waiting for the next frame's first
/// byte before re-checking the shutdown flag. The poll reads exactly one
/// byte (all-or-nothing), so an idle timeout can never strand a partial
/// frame header.
const SESSION_POLL: Duration = Duration::from_millis(25);

/// Ceiling on one streamed `DIAGNOSE` upload. Unlike streamed `TRACE_PUT`
/// (disk-backed, memory bounded by the chunk size) a streamed diagnose
/// materializes the parsed trace in memory, so it needs a cap; this one is
/// 4x the old single-frame limit.
const MAX_STREAM_DIAGNOSE_BYTES: u64 = 256 << 20;

/// A client connection, TCP or Unix-domain.
pub(crate) enum Conn {
    /// TCP (remote or loopback) client.
    Tcp(TcpStream),
    /// Unix-domain-socket client (local, no network stack).
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    fn set_timeouts(&self, t: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_read_timeout(Some(t))?;
                s.set_write_timeout(Some(t))
            }
            Conn::Unix(s) => {
                s.set_read_timeout(Some(t))?;
                s.set_write_timeout(Some(t))
            }
        }
    }

    fn set_read_timeout(&self, t: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(t)),
            Conn::Unix(s) => s.set_read_timeout(Some(t)),
        }
    }

    /// A second handle on the same socket — the session writer, so workers
    /// can send replies while the reader blocks on the next frame.
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP listen address (`"127.0.0.1:0"` picks an ephemeral port). At
    /// least one of `tcp_addr`/`unix_path` must be set.
    pub tcp_addr: Option<String>,
    /// Unix-domain-socket path (a stale socket file is replaced).
    pub unix_path: Option<PathBuf>,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Bounded job-queue depth; a full queue answers `BUSY`.
    pub queue_depth: usize,
    /// Directory for persisted models (`None` = in-memory cache only).
    pub model_dir: Option<PathBuf>,
    /// Corpus store directory (`None` = no `TRACE_PUT`/`TRACE_GET`; the
    /// directory is created and initialized on first use).
    pub corpus_dir: Option<PathBuf>,
    /// Models kept resident in the LRU cache.
    pub cache_capacity: usize,
    /// Per-request deadline, measured from acceptance; a job popped after
    /// its deadline is answered with an error instead of being processed.
    pub deadline: Duration,
    /// Socket read/write timeout for each connection.
    pub io_timeout: Duration,
    /// Ceiling on the per-session in-flight window granted at `HELLO`
    /// (protocol v4). A session asking for more (or for the default, 0)
    /// gets `min(asked, session_window)`.
    pub session_window: u32,
    /// Most diagnose requests coalesced into one micro-batch. `1`
    /// disables coalescing (every request dispatched alone); `0` is
    /// rejected at startup.
    pub batch_size: usize,
    /// How long a worker holding a diagnose request waits for companions
    /// targeting the same model before dispatching the batch. Zero — the
    /// default — means "take whatever is already queued, never wait":
    /// under sustained load batches form from queue backlog on their own,
    /// and measured throughput is strictly higher without the stall (the
    /// gathered members sit idle while the leader waits). A non-zero wait
    /// only pays off for bursty arrivals where trading latency for fuller
    /// batches is explicitly wanted.
    pub batch_wait: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tcp_addr: Some("127.0.0.1:0".to_string()),
            unix_path: None,
            workers: act_fleet::default_workers(),
            queue_depth: 64,
            model_dir: None,
            corpus_dir: None,
            cache_capacity: 32,
            deadline: Duration::from_secs(120),
            io_timeout: Duration::from_secs(30),
            session_window: 32,
            batch_size: 16,
            batch_wait: Duration::ZERO,
        }
    }
}

/// Counters behind `STATUS` — the daemon's observability surface, backed
/// by a per-server [`act_obs::Registry`] so the whole set serializes as
/// one [`MetricsSnapshot`](act_obs::MetricsSnapshot) in v2 `STATUS`
/// replies. Per-server (not the process-global registry) because the
/// tests boot several daemons in one process and their counters must not
/// mix. Request/reply counters are per [`FrameKind`](crate::FrameKind);
/// service time is a fixed-bucket latency histogram.
pub struct ServerStats {
    registry: Registry,
    accepted: Counter,
    served: Counter,
    errored: Counter,
    rejected_busy: Counter,
    crashed: Counter,
    deadline_expired: Counter,
    proto_errors: Counter,
    cache_memory_hits: Counter,
    cache_disk_loads: Counter,
    cache_store_loads: Counter,
    cache_trained: Counter,
    coalesced_batches: Counter,
    coalesce_hits: Counter,
    coalesce_misses: Counter,
    req_train: Counter,
    req_diagnose: Counter,
    req_status: Counter,
    req_shutdown: Counter,
    req_trace_put: Counter,
    req_trace_get: Counter,
    req_hello: Counter,
    req_trace_put_start: Counter,
    req_diagnose_start: Counter,
    req_stream_chunk: Counter,
    req_stream_end: Counter,
    stream_chunk_bytes: Counter,
    streams_opened: Counter,
    streams_aborted: Counter,
    reply_trained: Counter,
    reply_diagnosis: Counter,
    reply_status: Counter,
    reply_bye: Counter,
    reply_busy: Counter,
    reply_error: Counter,
    reply_stored: Counter,
    reply_trace_data: Counter,
    reply_hello_ack: Counter,
    uptime_ms: Gauge,
    queue_depth: Gauge,
    models_resident: Gauge,
    sessions_open: Gauge,
    requests_in_flight: Gauge,
    service_us: Histogram,
    enqueue_depth: Histogram,
    batch_size: Histogram,
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// Fresh stats over a fresh registry (all zeros).
    pub fn new() -> ServerStats {
        let registry = Registry::new();
        ServerStats {
            accepted: registry.counter("requests_accepted"),
            served: registry.counter("requests_served"),
            errored: registry.counter("requests_errored"),
            rejected_busy: registry.counter("requests_rejected_busy"),
            crashed: registry.counter("requests_crashed"),
            deadline_expired: registry.counter("requests_deadline_expired"),
            proto_errors: registry.counter("protocol_errors"),
            cache_memory_hits: registry.counter("cache_memory_hits"),
            cache_disk_loads: registry.counter("cache_disk_loads"),
            cache_store_loads: registry.counter("cache_store_loads"),
            cache_trained: registry.counter("cache_trained"),
            coalesced_batches: registry.counter("coalesced_batches"),
            coalesce_hits: registry.counter("coalesce_hits"),
            coalesce_misses: registry.counter("coalesce_misses"),
            req_train: registry.counter("req_train"),
            req_diagnose: registry.counter("req_diagnose"),
            req_status: registry.counter("req_status"),
            req_shutdown: registry.counter("req_shutdown"),
            req_trace_put: registry.counter("req_trace_put"),
            req_trace_get: registry.counter("req_trace_get"),
            req_hello: registry.counter("req_hello"),
            req_trace_put_start: registry.counter("req_trace_put_start"),
            req_diagnose_start: registry.counter("req_diagnose_start"),
            req_stream_chunk: registry.counter("req_stream_chunk"),
            req_stream_end: registry.counter("req_stream_end"),
            stream_chunk_bytes: registry.counter("stream_chunk_bytes"),
            streams_opened: registry.counter("streams_opened"),
            streams_aborted: registry.counter("streams_aborted"),
            reply_trained: registry.counter("reply_trained"),
            reply_diagnosis: registry.counter("reply_diagnosis"),
            reply_status: registry.counter("reply_status"),
            reply_bye: registry.counter("reply_bye"),
            reply_busy: registry.counter("reply_busy"),
            reply_error: registry.counter("reply_error"),
            reply_stored: registry.counter("reply_stored"),
            reply_trace_data: registry.counter("reply_trace_data"),
            reply_hello_ack: registry.counter("reply_hello_ack"),
            uptime_ms: registry.gauge("uptime_ms"),
            queue_depth: registry.gauge("queue_depth"),
            models_resident: registry.gauge("models_resident"),
            sessions_open: registry.gauge("sessions_open"),
            requests_in_flight: registry.gauge("requests_in_flight"),
            service_us: registry.histogram("service_us", &latency_bounds_us()),
            enqueue_depth: registry
                .histogram("enqueue_depth", &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256]),
            batch_size: registry.histogram("batch_size", &[1, 2, 4, 8, 16, 32]),
            registry,
        }
    }

    /// The registry every counter lives in, so sibling subsystems (the
    /// corpus store's metrics) can join the same `STATUS` snapshot.
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    pub(crate) fn bump_accepted(&self) {
        self.accepted.inc();
    }

    pub(crate) fn bump_served(&self) {
        self.served.inc();
    }

    pub(crate) fn bump_errored(&self) {
        self.errored.inc();
    }

    pub(crate) fn bump_rejected(&self) {
        self.rejected_busy.inc();
    }

    pub(crate) fn bump_crashed(&self) {
        self.crashed.inc();
    }

    pub(crate) fn bump_deadline_expired(&self) {
        self.deadline_expired.inc();
    }

    pub(crate) fn bump_proto_errors(&self) {
        self.proto_errors.inc();
    }

    /// Count one decoded request by frame kind.
    pub(crate) fn note_request(&self, request: &Request) {
        match request {
            Request::Train(_) => self.req_train.inc(),
            Request::Diagnose(..) => self.req_diagnose.inc(),
            Request::Status => self.req_status.inc(),
            Request::Shutdown => self.req_shutdown.inc(),
            Request::TracePut { .. } => self.req_trace_put.inc(),
            Request::TraceGet { .. } => self.req_trace_get.inc(),
            Request::Hello { .. } => self.req_hello.inc(),
            Request::TracePutStart { .. } => self.req_trace_put_start.inc(),
            Request::DiagnoseStart(_) => self.req_diagnose_start.inc(),
            Request::StreamChunk(bytes) => {
                self.req_stream_chunk.inc();
                self.stream_chunk_bytes.add(bytes.len() as u64);
            }
            Request::StreamEnd { .. } => self.req_stream_end.inc(),
        }
    }

    /// Count one written reply by frame kind.
    pub(crate) fn note_reply(&self, reply: &Reply) {
        match reply {
            Reply::Trained(_) => self.reply_trained.inc(),
            Reply::Diagnosis(_) => self.reply_diagnosis.inc(),
            Reply::StatusText(_) | Reply::StatusMetrics(..) => self.reply_status.inc(),
            Reply::Bye => self.reply_bye.inc(),
            Reply::Busy => self.reply_busy.inc(),
            Reply::Error(_) => self.reply_error.inc(),
            Reply::Stored(_) => self.reply_stored.inc(),
            Reply::TraceData(_) => self.reply_trace_data.inc(),
            Reply::HelloAck { .. } => self.reply_hello_ack.inc(),
        }
    }

    /// Observe the queue depth seen by one enqueued request (the
    /// per-request queue-depth histogram behind v2 `STATUS`).
    pub(crate) fn note_enqueue_depth(&self, depth: usize) {
        self.enqueue_depth.observe(depth as u64);
    }

    pub(crate) fn note_session_opened(&self) {
        self.sessions_open.add(1);
    }

    pub(crate) fn note_session_closed(&self) {
        self.sessions_open.add(-1);
    }

    pub(crate) fn note_request_started(&self) {
        self.requests_in_flight.add(1);
    }

    pub(crate) fn note_request_finished(&self) {
        self.requests_in_flight.add(-1);
    }

    pub(crate) fn note_stream_opened(&self) {
        self.streams_opened.inc();
    }

    pub(crate) fn note_stream_aborted(&self) {
        self.streams_aborted.inc();
    }

    /// Record one dispatched micro-batch of `size` diagnose requests. A
    /// request that found companions is a coalesce *hit*; a request
    /// dispatched alone (nothing compatible arrived within the gather
    /// window) is a *miss* — so `coalesce_hits + coalesce_misses` equals
    /// the number of batch-eligible requests, and the hit rate reads off
    /// directly.
    pub(crate) fn note_batch(&self, size: usize) {
        self.coalesced_batches.inc();
        self.batch_size.observe(size as u64);
        if size > 1 {
            self.coalesce_hits.add(size as u64);
        } else {
            self.coalesce_misses.inc();
        }
    }

    pub(crate) fn note_cache(&self, outcome: CacheOutcome) {
        match outcome {
            CacheOutcome::Memory => self.cache_memory_hits.inc(),
            CacheOutcome::Disk => self.cache_disk_loads.inc(),
            CacheOutcome::Store => self.cache_store_loads.inc(),
            CacheOutcome::Trained => self.cache_trained.inc(),
        }
    }

    pub(crate) fn record_service(&self, elapsed: Duration) {
        self.service_us.observe(elapsed.as_micros() as u64);
    }

    /// Requests answered `BUSY`.
    pub fn rejected_busy(&self) -> u64 {
        self.rejected_busy.get()
    }

    /// Requests whose handler panicked (isolated; daemon kept serving).
    pub fn crashed(&self) -> u64 {
        self.crashed.get()
    }

    /// Model-cache hits (memory, model-dir disk, or corpus store — no
    /// retraining in any of them).
    pub fn cache_hits(&self) -> u64 {
        self.cache_memory_hits.get() + self.cache_disk_loads.get() + self.cache_store_loads.get()
    }

    /// Every metric as one snapshot — what a v2 `STATUS` reply carries.
    /// The point-in-time gauges (uptime, queue depth, resident models)
    /// are stamped first so the snapshot is self-contained.
    pub fn metrics_snapshot(
        &self,
        uptime: Duration,
        queue_len: usize,
        models_resident: usize,
    ) -> act_obs::MetricsSnapshot {
        self.uptime_ms.set(uptime.as_millis() as i64);
        self.queue_depth.set(queue_len as i64);
        self.models_resident.set(models_resident as i64);
        self.registry.snapshot()
    }

    /// Render the plain-text `STATUS` block: `key value` per line. The
    /// keys are the v1 wire surface — scripts grep them — so the legacy
    /// aggregates (`cache_hits` = memory + disk, `cache_misses` =
    /// trained-from-scratch) are preserved verbatim.
    pub fn render(&self, uptime: Duration, queue_len: usize, models_resident: usize) -> String {
        use std::fmt::Write as _;
        let service = self.service_us.snapshot();
        let (p50, p99) = (service.quantile(0.50), service.quantile(0.99));
        let mut out = String::from("act-serve status\n");
        let mut line = |k: &str, v: u64| writeln!(out, "{k} {v}").expect("string write");
        line("uptime_ms", uptime.as_millis() as u64);
        line("requests_accepted", self.accepted.get());
        line("requests_served", self.served.get());
        line("requests_errored", self.errored.get());
        line("requests_rejected_busy", self.rejected_busy.get());
        line("requests_crashed", self.crashed.get());
        line("requests_deadline_expired", self.deadline_expired.get());
        line("protocol_errors", self.proto_errors.get());
        line("cache_hits", self.cache_hits());
        line("cache_misses", self.cache_trained.get());
        line("coalesced_batches", self.coalesced_batches.get());
        line("coalesce_hits", self.coalesce_hits.get());
        line("coalesce_misses", self.coalesce_misses.get());
        line("models_resident", models_resident as u64);
        line("queue_depth", queue_len as u64);
        writeln!(out, "service_ms_p50 {:.3}", p50 as f64 / 1e3).expect("string write");
        writeln!(out, "service_ms_p99 {:.3}", p99 as f64 / 1e3).expect("string write");
        out
    }
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`Server::shutdown`] (or send a `SHUTDOWN` frame) and then
/// [`Server::join`].
pub struct Server {
    stats: Arc<ServerStats>,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ModelCache>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    started: Instant,
}

impl Server {
    /// Bind the listeners and spawn acceptors + workers.
    ///
    /// # Errors
    ///
    /// Fails when no listener is configured, a bind fails, or `workers` /
    /// `queue_depth` / `cache_capacity` is zero.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let invalid = |what: &str| io::Error::new(io::ErrorKind::InvalidInput, what.to_string());
        if cfg.workers == 0 {
            return Err(invalid("workers must be >= 1"));
        }
        if cfg.queue_depth == 0 {
            return Err(invalid("queue depth must be >= 1"));
        }
        if cfg.cache_capacity == 0 {
            return Err(invalid("cache capacity must be >= 1"));
        }
        if cfg.session_window == 0 {
            return Err(invalid("session window must be >= 1"));
        }
        if cfg.batch_size == 0 {
            return Err(invalid("batch size must be >= 1 (1 disables coalescing)"));
        }
        if cfg.tcp_addr.is_none() && cfg.unix_path.is_none() {
            return Err(invalid("at least one of tcp_addr/unix_path is required"));
        }

        let stats = Arc::new(ServerStats::default());
        let queue = Arc::new(BoundedQueue::new(cfg.queue_depth));
        let mut cache = ModelCache::new(cfg.cache_capacity, cfg.model_dir.clone());
        if let Some(dir) = &cfg.corpus_dir {
            let corpus = act_store::Corpus::open_or_init(dir)
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corpus at {}: {e}", dir.display()),
                    )
                })?
                .with_registry(stats.registry());
            cache = cache.with_corpus(Arc::new(Mutex::new(corpus)));
        }
        let cache = Arc::new(cache);
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        let mut tcp_addr = None;
        if let Some(addr) = &cfg.tcp_addr {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            threads.push(spawn_acceptor(
                "act-serve-accept-tcp",
                move || listener.accept().map(|(s, _)| Conn::Tcp(s)),
                queue.clone(),
                cache.clone(),
                stats.clone(),
                shutdown.clone(),
                cfg.io_timeout,
                cfg.session_window,
                Instant::now(),
            )?);
        }
        if let Some(path) = &cfg.unix_path {
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            threads.push(spawn_acceptor(
                "act-serve-accept-unix",
                move || listener.accept().map(|(s, _)| Conn::Unix(s)),
                queue.clone(),
                cache.clone(),
                stats.clone(),
                shutdown.clone(),
                cfg.io_timeout,
                cfg.session_window,
                Instant::now(),
            )?);
        }
        threads.extend(spawn_workers(
            cfg.workers,
            queue.clone(),
            cache.clone(),
            stats.clone(),
            cfg.deadline,
            BatchPolicy { size: cfg.batch_size, wait: cfg.batch_wait },
        ));

        events().emit(
            Level::Info,
            "serve.start",
            format!(
                "daemon up: {} workers, queue depth {}, listening on {}",
                cfg.workers,
                cfg.queue_depth,
                match (&tcp_addr, &cfg.unix_path) {
                    (Some(a), Some(p)) => format!("{a} and {}", p.display()),
                    (Some(a), None) => a.to_string(),
                    (None, Some(p)) => p.display().to_string(),
                    (None, None) => unreachable!("validated above"),
                }
            ),
        );
        Ok(Server {
            stats,
            queue,
            cache,
            shutdown,
            threads,
            tcp_addr,
            unix_path: cfg.unix_path,
            started: Instant::now(),
        })
    }

    /// The bound TCP address (with the real port when `:0` was requested).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Live counters (shared with the acceptors and workers).
    pub fn stats(&self) -> Arc<ServerStats> {
        self.stats.clone()
    }

    /// The current `STATUS` block.
    pub fn status_text(&self) -> String {
        self.stats.render(self.started.elapsed(), self.queue.len(), self.cache.resident())
    }

    /// Begin graceful drain: stop accepting, let workers finish accepted
    /// jobs. Idempotent; also triggered by a `SHUTDOWN` frame.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Whether a drain has started.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Wait for the drain to finish (acceptors stopped, every accepted job
    /// answered). Removes the Unix socket file on the way out.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Spawn one acceptor thread over a nonblocking `accept` closure.
#[allow(clippy::too_many_arguments)]
fn spawn_acceptor(
    name: &str,
    mut accept: impl FnMut() -> io::Result<Conn> + Send + 'static,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ModelCache>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    io_timeout: Duration,
    session_window: u32,
    started: Instant,
) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name(name.to_string()).spawn(move || {
        while !shutdown.load(Ordering::SeqCst) {
            match accept() {
                Ok(conn) => handle_connection(
                    conn,
                    &queue,
                    &cache,
                    &stats,
                    &shutdown,
                    io_timeout,
                    session_window,
                    started,
                ),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                // Transient accept errors (e.g. aborted handshakes) must
                // not kill the acceptor.
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
    })
}

/// Read one request frame and either answer inline, enqueue, reject, or —
/// for a v4 `HELLO` — promote the connection to a multiplexed session on
/// its own reader thread.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    mut conn: Conn,
    queue: &Arc<BoundedQueue<Job>>,
    cache: &Arc<ModelCache>,
    stats: &Arc<ServerStats>,
    shutdown: &Arc<AtomicBool>,
    io_timeout: Duration,
    session_window: u32,
    started: Instant,
) {
    let _ = conn.set_timeouts(io_timeout);
    let (version, request_id, request) = match read_frame(&mut conn) {
        Ok(frame) => match Request::from_frame(&frame) {
            Ok(req) => (frame.version, frame.request_id, req),
            Err(e) => {
                stats.bump_proto_errors();
                send_reply(
                    &mut conn,
                    frame.version,
                    frame.request_id,
                    &Reply::Error(format!("bad request: {e}")),
                    stats,
                );
                return;
            }
        },
        Err(e) => {
            stats.bump_proto_errors();
            send_reply(&mut conn, VERSION, 0, &Reply::Error(format!("bad request: {e}")), stats);
            return;
        }
    };
    stats.note_request(&request);
    match request {
        // A v4 connection that opens with HELLO becomes a session; the
        // reader thread owns the connection from here.
        Request::Hello { window } if version >= SESSION_VERSION => {
            let session = SessionCtx {
                queue: queue.clone(),
                cache: cache.clone(),
                stats: stats.clone(),
                shutdown: shutdown.clone(),
                io_timeout,
                started,
            };
            let granted =
                if window == 0 { session_window } else { window.min(session_window) }.max(1);
            let spawned = std::thread::Builder::new()
                .name("act-serve-session".to_string())
                .spawn(move || run_session(conn, request_id, granted, session));
            if spawned.is_err() {
                events().emit(Level::Warn, "serve.session", "failed to spawn session thread");
            }
        }
        Request::Hello { .. } => {
            // HELLO has no meaning below v4 (old clients never send it).
            send_reply(
                &mut conn,
                version,
                request_id,
                &Reply::Error("HELLO requires protocol v4".into()),
                stats,
            );
        }
        // The stream kinds only exist inside a session.
        Request::TracePutStart { .. } | Request::DiagnoseStart(_) => {
            send_reply(
                &mut conn,
                version,
                request_id,
                &Reply::Error("streaming uploads require a v4 session (send HELLO first)".into()),
                stats,
            );
        }
        Request::StreamChunk(_) | Request::StreamEnd { .. } => {
            stats.bump_proto_errors();
            send_reply(
                &mut conn,
                version,
                request_id,
                &Reply::Error("stream frame outside an open stream".into()),
                stats,
            );
        }
        // Always answerable, even with a saturated queue — that is the
        // point of handling them on the acceptor.
        Request::Status => {
            let reply = status_reply(version, queue, cache, stats, started);
            send_reply(&mut conn, version, request_id, &reply, stats);
        }
        Request::Shutdown => {
            send_reply(&mut conn, version, request_id, &Reply::Bye, stats);
            events().emit(Level::Info, "serve.shutdown", "shutdown requested; draining");
            shutdown.store(true, Ordering::SeqCst);
            queue.close();
        }
        req @ (Request::Train(_)
        | Request::Diagnose(..)
        | Request::TracePut { .. }
        | Request::TraceGet { .. }) => {
            let depth = queue.len();
            let job = Job {
                responder: Responder::OneShot { conn, version, request_id },
                work: Work::Request(req),
                accepted: Instant::now(),
            };
            match queue.try_push(job) {
                Ok(()) => {
                    stats.bump_accepted();
                    stats.note_enqueue_depth(depth);
                }
                Err(job) => {
                    stats.bump_rejected();
                    events().emit(Level::Debug, "serve.busy", "queue full: request rejected");
                    job.responder.respond(&Reply::Busy, stats);
                }
            }
        }
    }
}

/// Build the `STATUS` reply for a `version` requester: v2+ gets the
/// metrics snapshot, v1 the plain text block its decoder knows.
fn status_reply(
    version: u8,
    queue: &BoundedQueue<Job>,
    cache: &ModelCache,
    stats: &ServerStats,
    started: Instant,
) -> Reply {
    let text = stats.render(started.elapsed(), queue.len(), cache.resident());
    if version >= 2 {
        let snap = stats.metrics_snapshot(started.elapsed(), queue.len(), cache.resident());
        Reply::StatusMetrics(text, snap)
    } else {
        Reply::StatusText(text)
    }
}

/// Count and write one reply, stamped with the requester's protocol
/// version (so v1 clients never see a frame they cannot decode) and — on
/// v4 — the request id it answers.
pub(crate) fn send_reply(
    conn: &mut Conn,
    version: u8,
    request_id: u32,
    reply: &Reply,
    stats: &ServerStats,
) {
    stats.note_reply(reply);
    // A vanished client is its own problem; the daemon moves on.
    let _ = write_frame(conn, &reply.to_frame().with_request(request_id).with_version(version));
}

// ---------------------------------------------------------------------
// v4 multiplexed sessions.
// ---------------------------------------------------------------------

/// The half of a session shared between its reader thread and the workers
/// answering its requests: the write side of the socket plus the in-flight
/// account. Replies go out under the writer lock, one whole frame at a
/// time, so frames from concurrent workers never interleave mid-frame.
pub(crate) struct SessionShared {
    writer: Mutex<Conn>,
    version: u8,
    window: u32,
    in_flight: AtomicU32,
}

impl SessionShared {
    /// Write one reply frame tagged with the request id it answers.
    pub(crate) fn send(&self, request_id: u32, reply: &Reply, stats: &ServerStats) {
        stats.note_reply(reply);
        let frame = reply.to_frame().with_request(request_id).with_version(self.version);
        let mut w = self.writer.lock().expect("session writer lock");
        // A vanished session client is noticed by the reader; move on.
        let _ = write_frame(&mut *w, &frame);
    }

    /// Claim one in-flight slot; `false` means the window is exhausted and
    /// the request must be answered `BUSY`. Only the session reader calls
    /// this, so a plain load-then-add cannot race another claimer.
    fn begin_request(&self, stats: &ServerStats) -> bool {
        if self.in_flight.load(Ordering::SeqCst) >= self.window {
            return false;
        }
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        stats.note_request_started();
        true
    }

    /// Release the slot claimed by [`SessionShared::begin_request`].
    pub(crate) fn finish_request(&self, stats: &ServerStats) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        stats.note_request_finished();
    }

    /// Send the final reply for a claimed request. The slot is released
    /// *before* the write: the reply is the client's signal that the slot
    /// is free, so a pipelined client that fires its next request the
    /// moment a reply lands must never race a late decrement into `BUSY`.
    pub(crate) fn send_final(&self, request_id: u32, reply: &Reply, stats: &ServerStats) {
        self.finish_request(stats);
        self.send(request_id, reply, stats);
    }

    /// Send the final replies for several claimed requests of one
    /// micro-batch in a single buffered write. Every slot is released
    /// first (same ordering contract as [`SessionShared::send_final`]),
    /// then all frames are concatenated and written under one writer-lock
    /// acquisition — one syscall per batch per session instead of one per
    /// reply, which is where a coalesced batch's reply-side win comes
    /// from on a pipelined session.
    pub(crate) fn send_final_batch(&self, replies: &[(u32, Reply)], stats: &ServerStats) {
        for _ in replies {
            self.finish_request(stats);
        }
        let mut buf = Vec::new();
        for (request_id, reply) in replies {
            stats.note_reply(reply);
            let frame = reply.to_frame().with_request(*request_id).with_version(self.version);
            encode_frame(&mut buf, &frame);
        }
        let mut w = self.writer.lock().expect("session writer lock");
        // A vanished session client is noticed by the reader; move on.
        let _ = w.write_all(&buf).and_then(|()| w.flush());
    }
}

/// Everything a session reader thread needs from the daemon.
struct SessionCtx {
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ModelCache>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    io_timeout: Duration,
    started: Instant,
}

/// The at-most-one inbound stream a session may have open.
enum SessionStream {
    /// A chunked `TRACE_PUT`; the corpus holds the parser/CRC state.
    TracePut { request_id: u32 },
    /// A chunked `DIAGNOSE`; the trace is parsed here, then queued whole.
    Diagnose { request_id: u32, spec: ModelSpec, parse: Box<DiagnoseStream> },
}

impl SessionStream {
    fn request_id(&self) -> u32 {
        match self {
            SessionStream::TracePut { request_id } => *request_id,
            SessionStream::Diagnose { request_id, .. } => *request_id,
        }
    }
}

/// Drive one v4 session: ack the HELLO, then demultiplex frames until the
/// client closes, the daemon drains, or the stream desyncs. Replies are
/// written by whichever thread finishes a request — out of order is the
/// point — while this thread keeps reading.
fn run_session(mut conn: Conn, hello_id: u32, window: u32, ctx: SessionCtx) {
    let SessionCtx { queue, cache, stats, shutdown, io_timeout, started } = ctx;
    let writer = match conn.try_clone() {
        Ok(w) => w,
        Err(e) => {
            let reply = Reply::Error(format!("session setup failed: {e}"));
            send_reply(&mut conn, VERSION, hello_id, &reply, &stats);
            return;
        }
    };
    let shared = Arc::new(SessionShared {
        writer: Mutex::new(writer),
        version: VERSION,
        window,
        in_flight: AtomicU32::new(0),
    });
    shared.send(hello_id, &Reply::HelloAck { window }, &stats);
    stats.note_session_opened();
    let mut stream: Option<SessionStream> = None;

    'session: while !shutdown.load(Ordering::SeqCst) {
        // Wait for the next frame's first byte with a short timeout (an
        // all-or-nothing 1-byte read), so idle sessions notice shutdown
        // without ever stranding a partial header.
        let _ = conn.set_read_timeout(SESSION_POLL);
        let mut first = [0u8; 1];
        match conn.read(&mut first) {
            Ok(0) => break 'session, // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue 'session;
            }
            Err(_) => break 'session,
        }
        // A frame has started: the rest must arrive within io_timeout.
        let _ = conn.set_read_timeout(io_timeout);
        let frame = match read_frame((&first[..]).chain(&mut conn)) {
            Ok(f) => f,
            Err(e) => {
                // The stream position is unknown now; the session cannot
                // continue. Best-effort error, then close.
                stats.bump_proto_errors();
                shared.send(0, &Reply::Error(format!("bad frame: {e}")), &stats);
                break 'session;
            }
        };
        let request_id = frame.request_id;
        let request = match Request::from_frame(&frame) {
            Ok(r) => r,
            Err(e) => {
                // Framing is intact — only this request is malformed.
                stats.bump_proto_errors();
                shared.send(request_id, &Reply::Error(format!("bad request: {e}")), &stats);
                continue 'session;
            }
        };
        stats.note_request(&request);
        match request {
            Request::Hello { .. } => {
                shared.send(request_id, &Reply::Error("session already open".into()), &stats);
            }
            Request::Status => {
                let reply = status_reply(frame.version, &queue, &cache, &stats, started);
                shared.send(request_id, &reply, &stats);
            }
            Request::Shutdown => {
                shared.send(request_id, &Reply::Bye, &stats);
                events().emit(Level::Info, "serve.shutdown", "shutdown requested; draining");
                shutdown.store(true, Ordering::SeqCst);
                queue.close();
                break 'session;
            }
            Request::TracePutStart { key, workload } => {
                if stream.is_some() {
                    // One inbound stream per session; the client retries.
                    shared.send(request_id, &Reply::Busy, &stats);
                    continue 'session;
                }
                if !shared.begin_request(&stats) {
                    shared.send(request_id, &Reply::Busy, &stats);
                    continue 'session;
                }
                let Some(corpus) = cache.corpus() else {
                    shared.send_final(
                        request_id,
                        &Reply::Error(
                            "no corpus store configured; start the daemon with --corpus".into(),
                        ),
                        &stats,
                    );
                    continue 'session;
                };
                let mut c = corpus.lock().expect("corpus lock");
                if c.streaming_key().is_some() {
                    // Another session owns the corpus stream right now.
                    drop(c);
                    shared.send_final(request_id, &Reply::Busy, &stats);
                    continue 'session;
                }
                match c.stream_begin(&key, &workload) {
                    Ok(()) => {
                        drop(c);
                        stats.note_stream_opened();
                        stream = Some(SessionStream::TracePut { request_id });
                    }
                    Err(e) => {
                        drop(c);
                        shared.send_final(
                            request_id,
                            &Reply::Error(format!("trace put failed: {e}")),
                            &stats,
                        );
                    }
                }
            }
            Request::DiagnoseStart(spec) => {
                if stream.is_some() {
                    shared.send(request_id, &Reply::Busy, &stats);
                    continue 'session;
                }
                if !shared.begin_request(&stats) {
                    shared.send(request_id, &Reply::Busy, &stats);
                    continue 'session;
                }
                stats.note_stream_opened();
                stream = Some(SessionStream::Diagnose {
                    request_id,
                    spec,
                    parse: Box::new(DiagnoseStream::new()),
                });
            }
            Request::StreamChunk(bytes) => {
                let Some(open) = stream.as_mut() else {
                    stats.bump_proto_errors();
                    shared.send(
                        request_id,
                        &Reply::Error("stream frame outside an open stream".into()),
                        &stats,
                    );
                    continue 'session;
                };
                let owner = open.request_id();
                let failed = match open {
                    SessionStream::TracePut { .. } => {
                        let corpus = cache.corpus().expect("stream opened with a corpus");
                        let mut c = corpus.lock().expect("corpus lock");
                        c.stream_chunk(&bytes).err().map(|e| format!("trace put failed: {e}"))
                    }
                    SessionStream::Diagnose { parse, .. } => parse.feed(&bytes).err(),
                };
                if let Some(why) = failed {
                    // The corpus/parser side already aborted; drop ours.
                    stream = None;
                    stats.note_stream_aborted();
                    shared.send_final(owner, &Reply::Error(why), &stats);
                }
            }
            Request::StreamEnd { crc32, total_len } => {
                let Some(open) = stream.take() else {
                    stats.bump_proto_errors();
                    shared.send(
                        request_id,
                        &Reply::Error("stream frame outside an open stream".into()),
                        &stats,
                    );
                    continue 'session;
                };
                match open {
                    SessionStream::TracePut { request_id } => {
                        let corpus = cache.corpus().expect("stream opened with a corpus");
                        let reply = {
                            let mut c = corpus.lock().expect("corpus lock");
                            match c.stream_finish(crc32, total_len) {
                                Ok(info) => Reply::Stored(stored_summary(&info.meta.key, &info)),
                                Err(e) => {
                                    stats.note_stream_aborted();
                                    Reply::Error(format!("trace put failed: {e}"))
                                }
                            }
                        };
                        shared.send_final(request_id, &reply, &stats);
                    }
                    SessionStream::Diagnose { request_id, spec, parse } => {
                        match parse.finish(crc32, total_len) {
                            Ok(trace) => {
                                let depth = queue.len();
                                let job = Job {
                                    responder: Responder::Session {
                                        shared: shared.clone(),
                                        request_id,
                                    },
                                    work: Work::DiagnoseTrace(spec, Box::new(trace)),
                                    accepted: Instant::now(),
                                };
                                match queue.try_push(job) {
                                    Ok(()) => {
                                        stats.bump_accepted();
                                        stats.note_enqueue_depth(depth);
                                    }
                                    Err(job) => {
                                        stats.bump_rejected();
                                        job.responder.respond(&Reply::Busy, &stats);
                                    }
                                }
                            }
                            Err(why) => {
                                stats.note_stream_aborted();
                                shared.send_final(request_id, &Reply::Error(why), &stats);
                            }
                        }
                    }
                }
            }
            req @ (Request::Train(_)
            | Request::Diagnose(..)
            | Request::TracePut { .. }
            | Request::TraceGet { .. }) => {
                if !shared.begin_request(&stats) {
                    // Window exhausted: BUSY for this request only.
                    stats.bump_rejected();
                    shared.send(request_id, &Reply::Busy, &stats);
                    continue 'session;
                }
                let depth = queue.len();
                let job = Job {
                    responder: Responder::Session { shared: shared.clone(), request_id },
                    work: Work::Request(req),
                    accepted: Instant::now(),
                };
                match queue.try_push(job) {
                    Ok(()) => {
                        stats.bump_accepted();
                        stats.note_enqueue_depth(depth);
                    }
                    Err(job) => {
                        stats.bump_rejected();
                        events().emit(Level::Debug, "serve.busy", "queue full: request rejected");
                        job.responder.respond(&Reply::Busy, &stats);
                    }
                }
            }
        }
    }

    // A stream still open here means the client died mid-upload: truncate
    // the half-written corpus entry so no partial segment survives.
    if let Some(open) = stream {
        stats.note_stream_aborted();
        if matches!(open, SessionStream::TracePut { .. }) {
            if let Some(corpus) = cache.corpus() {
                corpus.lock().expect("corpus lock").stream_abort();
            }
        }
        shared.finish_request(&stats);
        events().emit(Level::Warn, "serve.stream", "session closed mid-stream; upload aborted");
    }
    stats.note_session_closed();
}

/// The `STORED` reply text — shared verbatim by the one-frame and the
/// streamed `TRACE_PUT` paths, so clients see one format.
pub(crate) fn stored_summary(key: &str, info: &act_store::EntryInfo) -> String {
    format!(
        "stored {} ({} records, {} -> {} bytes, {:.2}x)",
        key,
        info.records,
        info.raw_bytes,
        info.encoded_bytes,
        info.raw_bytes as f64 / info.encoded_bytes.max(1) as f64
    )
}

/// Incremental parser for a streamed `DIAGNOSE` upload: text-codec lines
/// arrive in arbitrary chunk splits, records accumulate in a
/// [`TraceBuilder`], and the CRC-32/length tallies are checked at the end
/// — the same state machine the corpus runs for streamed `TRACE_PUT`, but
/// materializing in memory since the trace is diagnosed, not stored.
struct DiagnoseStream {
    crc: Crc32,
    bytes_in: u64,
    lineno: usize,
    partial: Vec<u8>,
    header_seen: bool,
    builder: TraceBuilder,
}

/// Longest line a streamed upload may contain (matches the corpus cap).
const MAX_STREAM_LINE_BYTES: usize = 64 << 10;

impl DiagnoseStream {
    fn new() -> DiagnoseStream {
        DiagnoseStream {
            crc: Crc32::new(),
            bytes_in: 0,
            lineno: 0,
            partial: Vec::new(),
            header_seen: false,
            builder: TraceBuilder::new(),
        }
    }

    fn feed(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.crc.update(bytes);
        self.bytes_in += bytes.len() as u64;
        if self.bytes_in > MAX_STREAM_DIAGNOSE_BYTES {
            return Err(format!(
                "streamed diagnose exceeds the {MAX_STREAM_DIAGNOSE_BYTES}-byte cap"
            ));
        }
        let mut rest = bytes;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(nl);
            rest = &tail[1..];
            let line = if self.partial.is_empty() {
                head.to_vec()
            } else {
                self.partial.extend_from_slice(head);
                std::mem::take(&mut self.partial)
            };
            self.line(&line)?;
        }
        self.partial.extend_from_slice(rest);
        if self.partial.len() > MAX_STREAM_LINE_BYTES {
            return Err(format!(
                "streamed line exceeds {MAX_STREAM_LINE_BYTES} bytes without a newline"
            ));
        }
        Ok(())
    }

    fn line(&mut self, line: &[u8]) -> Result<(), String> {
        self.lineno += 1;
        let text = std::str::from_utf8(line)
            .map_err(|_| format!("stream line {} is not UTF-8", self.lineno))?;
        let text = text.strip_suffix('\r').unwrap_or(text);
        if !self.header_seen {
            let mut hp = text.split_whitespace();
            if hp.next() != Some("acttrace") || hp.next() != Some("v1") {
                return Err("stream header: bad header".into());
            }
            let code_len: u64 = hp
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| "stream header: bad code_len".to_string())?;
            if code_len > MAX_CODE_LEN {
                return Err(format!("stream header: code_len {code_len} exceeds the cap"));
            }
            let Ok(()) = self.builder.begin(code_len as usize);
            self.header_seen = true;
            return Ok(());
        }
        if text.is_empty() {
            return Ok(());
        }
        let rec =
            parse_record_line(text, self.lineno).map_err(|e| format!("bad trace payload: {e}"))?;
        let Ok(()) = self.builder.record(&rec);
        Ok(())
    }

    fn finish(mut self: Box<Self>, crc32: u32, total_len: u64) -> Result<Trace, String> {
        if self.bytes_in != total_len {
            return Err(format!(
                "stream length mismatch: received {} bytes, client sealed {total_len}",
                self.bytes_in
            ));
        }
        let got = self.crc.finish();
        if got != crc32 {
            return Err(format!(
                "stream crc mismatch: received {got:#010x}, client sealed {crc32:#010x}"
            ));
        }
        if !self.partial.is_empty() {
            let line = std::mem::take(&mut self.partial);
            self.line(&line)?;
        }
        if !self.header_seen {
            return Err("stream ended before the header line".into());
        }
        Ok(self.builder.into_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_render_has_the_required_counters() {
        let stats = ServerStats::default();
        stats.bump_accepted();
        stats.bump_served();
        stats.bump_rejected();
        stats.bump_crashed();
        stats.note_cache(CacheOutcome::Memory);
        stats.note_cache(CacheOutcome::Trained);
        stats.record_service(Duration::from_millis(4));
        let text = stats.render(Duration::from_secs(1), 3, 2);
        for needle in [
            "requests_served 1",
            "requests_rejected_busy 1",
            "requests_crashed 1",
            "cache_hits 1",
            "cache_misses 1",
            "queue_depth 3",
            "models_resident 2",
            "service_ms_p50",
            "service_ms_p99",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn metrics_snapshot_carries_counters_gauges_and_latency() {
        let stats = ServerStats::default();
        stats.note_request(&Request::Status);
        stats.note_request(&Request::Train(crate::proto::ModelSpec::new("fft")));
        stats.note_reply(&Reply::Busy);
        stats.bump_served();
        stats.note_cache(CacheOutcome::Disk);
        stats.record_service(Duration::from_micros(180));
        let snap = stats.metrics_snapshot(Duration::from_secs(2), 5, 1);
        assert_eq!(snap.counter("req_status"), Some(1));
        assert_eq!(snap.counter("req_train"), Some(1));
        assert_eq!(snap.counter("reply_busy"), Some(1));
        assert_eq!(snap.counter("requests_served"), Some(1));
        assert_eq!(snap.counter("cache_disk_loads"), Some(1));
        assert_eq!(snap.gauge("uptime_ms"), Some(2000));
        assert_eq!(snap.gauge("queue_depth"), Some(5));
        assert_eq!(snap.gauge("models_resident"), Some(1));
        let service = snap.histogram("service_us").expect("latency histogram");
        assert_eq!(service.count(), 1);
        // Identical after a wire round-trip — what a v2 STATUS carries.
        let bytes = snap.to_bytes();
        assert_eq!(act_obs::MetricsSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn start_rejects_degenerate_configs() {
        let bad = |f: fn(&mut ServeConfig)| {
            let mut cfg = ServeConfig::default();
            f(&mut cfg);
            Server::start(cfg).err().expect("config must be rejected")
        };
        assert!(bad(|c| c.workers = 0).to_string().contains("workers"));
        assert!(bad(|c| c.queue_depth = 0).to_string().contains("queue depth"));
        assert!(bad(|c| c.cache_capacity = 0).to_string().contains("cache"));
        assert!(bad(|c| {
            c.tcp_addr = None;
            c.unix_path = None;
        })
        .to_string()
        .contains("at least one"));
    }
}
