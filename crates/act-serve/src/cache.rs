//! The model cache: trained `(workload, topology, seed)` models kept hot in
//! an LRU map and persisted to a model directory so repeat clients — and
//! daemon restarts — skip retraining.
//!
//! A *model* is everything `DIAGNOSE` needs: the per-thread
//! [`WeightStore`] (the paper's binary-patched weights), the Correct Set
//! the ranked suspects are pruned against, and the code-length the encoder
//! normalizes by. Lookup order is memory → disk → corpus store → train;
//! only the last is a cache miss. Disk writes go through
//! [`WeightStore::save_to_path`]'s atomic temp-file + `rename`, so a crash
//! mid-save never leaves a torn model for the next boot to trip over.
//!
//! When the daemon runs with `--corpus`, the cache is additionally backed
//! by the [`act_store::Corpus`]: trained models (weights + Correct Set)
//! are persisted as store blobs keyed by `ModelKey::canonical()`, and
//! `TRAIN` prefers the corpus's ingested correct-run traces over fresh
//! simulator runs when the workload has at least two of them.

use crate::proto::ModelSpec;
use act_core::offline::offline_train;
use act_core::weights::WeightStore;
use act_core::{ActConfig, ActError};
use act_sim::config::MachineConfig;
use act_sim::events::RawDep;
use act_sim::machine::Machine;
use act_store::{Corpus, EntryKind};
use act_trace::collector::TraceCollector;
use act_trace::correct_set::CorrectSet;
use act_trace::event::Trace;
use act_trace::input_gen::positive_sequences;
use act_trace::raw::observed_deps;
use act_workloads::registry;
use act_workloads::spec::Workload;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default training epoch cap when the request leaves `max_epochs` at 0
/// (matches the experiment harness's `act_cfg`).
pub const DEFAULT_MAX_EPOCHS: usize = 300;

/// Cache key: the shared workload × topology × seed identity from
/// `act-fleet` — `seq_len` and `hidden` pin the topology
/// (`inputs = FEATURES_PER_DEP * seq_len`). Its
/// [`canonical`](ModelKey::canonical) string form is the stable on-disk
/// file stem (workload names are `[a-z0-9_]`, so no escaping is needed;
/// `__`-reserved names never reach the cache).
pub use act_fleet::ModelKey;

impl From<&ModelSpec> for ModelKey {
    /// The key a request spec names (zero topology axes resolve to 1).
    fn from(spec: &ModelSpec) -> ModelKey {
        ModelKey::new(&spec.workload, spec.seq_len as usize, spec.hidden as usize, spec.seed)
    }
}

/// A trained, servable model.
#[derive(Debug)]
pub struct Model {
    /// Per-thread weights (the paper's binary patching, server-side).
    pub store: WeightStore,
    /// Sequences observed in correct runs, for pruning and ranking.
    pub correct: CorrectSet,
    /// Code length the encoder normalizes by (must match training).
    pub norm_code_len: usize,
    /// One-line training summary for `TRAIN` replies.
    pub summary: String,
}

/// Where a served model came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Already resident in memory.
    Memory,
    /// Loaded from the model directory (no retraining).
    Disk,
    /// Loaded from the corpus store (no retraining).
    Store,
    /// Trained from scratch (the only outcome counted as a miss).
    Trained,
}

struct Slot {
    model: Arc<Model>,
    /// Relaxed-atomic LRU stamp: hits bump it under the *read* lock, so
    /// the hot path never takes an exclusive lock (see [`ModelCache`]).
    last_used: AtomicU64,
}

/// LRU cache over trained models, optionally backed by a model directory.
///
/// The hit path is contention-free: lookups take the map's `RwLock` in
/// *read* mode (shared — concurrent workers never serialize on hits) and
/// record recency by storing a relaxed-atomic tick into the slot. Only
/// misses — an insert after disk/store/training resolution — take the
/// write lock. Under concurrency the LRU ordering is approximate (two
/// simultaneous hits may stamp ticks out of order), which changes nothing
/// observable: eviction picks *a* least-recently-used victim, and the
/// stamps of concurrently-touched entries differ by at most the number of
/// in-flight readers.
pub struct ModelCache {
    map: RwLock<HashMap<ModelKey, Slot>>,
    tick: AtomicU64,
    capacity: usize,
    dir: Option<PathBuf>,
    corpus: Option<Arc<Mutex<Corpus>>>,
}

impl ModelCache {
    /// An empty cache holding at most `capacity` models in memory, spilling
    /// to `dir` (if given) for persistence across evictions and restarts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ModelCache {
            map: RwLock::new(HashMap::new()),
            tick: AtomicU64::new(0),
            capacity,
            dir,
            corpus: None,
        }
    }

    /// Back the cache with a corpus store: models persist as store blobs
    /// and training prefers the corpus's ingested traces.
    pub fn with_corpus(mut self, corpus: Arc<Mutex<Corpus>>) -> Self {
        self.corpus = Some(corpus);
        self
    }

    /// The corpus store backing this cache, when the daemon has one.
    pub fn corpus(&self) -> Option<&Arc<Mutex<Corpus>>> {
        self.corpus.as_ref()
    }

    /// Models currently resident in memory.
    pub fn resident(&self) -> usize {
        self.map.read().expect("cache lock").len()
    }

    /// Fetch the model for `spec`, training it on a miss. The lock is *not*
    /// held across training (which takes seconds) — concurrent first
    /// requests for the same key may train redundantly, but no request ever
    /// blocks behind another key's training.
    ///
    /// # Errors
    ///
    /// Returns [`ActError::UnknownWorkload`] for an unregistered workload
    /// and [`ActError::Train`] when training fails.
    pub fn get_or_train(&self, spec: &ModelSpec) -> Result<(Arc<Model>, CacheOutcome), ActError> {
        let key = ModelKey::from(spec);
        if let Some(model) = self.lookup(&key) {
            return Ok((model, CacheOutcome::Memory));
        }
        if let Some(model) = self.load_from_dir(&key) {
            let model = Arc::new(model);
            self.insert(key, model.clone());
            return Ok((model, CacheOutcome::Disk));
        }
        if let Some(model) = self.load_from_store(&key) {
            let model = Arc::new(model);
            self.insert(key, model.clone());
            return Ok((model, CacheOutcome::Store));
        }
        let model = Arc::new(self.train(spec)?);
        self.save_to_dir(&key, &model);
        self.save_to_store(&key, &model);
        self.insert(key, model.clone());
        Ok((model, CacheOutcome::Trained))
    }

    /// Train from the corpus's ingested correct-run traces when the
    /// workload has at least two; otherwise collect fresh simulator runs.
    fn train(&self, spec: &ModelSpec) -> Result<Model, ActError> {
        if let Some(corpus) = &self.corpus {
            let traces = {
                let c = corpus.lock().expect("corpus lock");
                corpus_traces(&c, &spec.workload)
            };
            if traces.len() >= 2 {
                return train_model_from_traces(spec, traces);
            }
        }
        train_model(spec)
    }

    fn lookup(&self, key: &ModelKey) -> Option<Arc<Model>> {
        let map = self.map.read().expect("cache lock");
        let slot = map.get(key)?;
        slot.last_used.store(self.tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
        Some(slot.model.clone())
    }

    fn insert(&self, key: ModelKey, model: Arc<Model>) {
        let mut map = self.map.write().expect("cache lock");
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        map.insert(key, Slot { model, last_used: AtomicU64::new(tick) });
        while map.len() > self.capacity {
            let evict = map
                .iter()
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
                .expect("nonempty map");
            map.remove(&evict);
        }
    }

    fn weights_path(&self, key: &ModelKey) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{}.weights", key.canonical())))
    }

    fn cset_path(&self, key: &ModelKey) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{}.cset", key.canonical())))
    }

    fn load_from_dir(&self, key: &ModelKey) -> Option<Model> {
        let store = WeightStore::load_from_path(self.weights_path(key)?).ok()?;
        let correct = read_correct_set(&self.cset_path(key)?).ok()?;
        // The store must actually match the key (a hand-edited or stale
        // file with the wrong topology would poison every diagnosis).
        if store.seq_len() != key.seq_len || store.topology().hidden != key.hidden {
            return None;
        }
        let norm_code_len = norm_of(registry::by_name(&key.workload)?.as_ref());
        let summary = format!(
            "model {} loaded from disk ({} threads, {} correct sequences)",
            key.canonical(),
            store.known_threads().len(),
            correct.len()
        );
        Some(Model { store, correct, norm_code_len, summary })
    }

    fn save_to_dir(&self, key: &ModelKey, model: &Model) {
        let (Some(wpath), Some(cpath)) = (self.weights_path(key), self.cset_path(key)) else {
            return;
        };
        if let Some(dir) = &self.dir {
            let _ = std::fs::create_dir_all(dir);
        }
        // Persistence is best-effort: a full disk degrades the daemon to
        // in-memory caching, it does not fail requests.
        let _ = model.store.save_to_path(&wpath);
        let _ = write_correct_set(&cpath, &model.correct);
    }

    fn load_from_store(&self, key: &ModelKey) -> Option<Model> {
        let corpus = self.corpus.as_ref()?;
        let (weights, cset) = {
            let c = corpus.lock().expect("corpus lock");
            (
                c.get_blob(EntryKind::Model, &key.canonical()).ok()?,
                c.get_blob(EntryKind::CorrectSet, &key.canonical()).ok()?,
            )
        };
        let store = WeightStore::load(&weights[..]).ok()?;
        // Same poisoned-model guard as the disk path.
        if store.seq_len() != key.seq_len || store.topology().hidden != key.hidden {
            return None;
        }
        let (norm_code_len, correct) = parse_cset_blob(&cset)?;
        let summary = format!(
            "model {} loaded from corpus store ({} threads, {} correct sequences)",
            key.canonical(),
            store.known_threads().len(),
            correct.len()
        );
        Some(Model { store, correct, norm_code_len, summary })
    }

    fn save_to_store(&self, key: &ModelKey, model: &Model) {
        let Some(corpus) = &self.corpus else {
            return;
        };
        let mut weights = Vec::new();
        if model.store.save(&mut weights).is_err() {
            return;
        }
        let cset = cset_blob(model);
        // Best-effort, like the model-dir path: a full disk degrades the
        // daemon to in-memory caching, it does not fail requests.
        let mut c = corpus.lock().expect("corpus lock");
        let _ = c.put_blob(EntryKind::Model, &key.canonical(), &key.workload, &weights);
        let _ = c.put_blob(EntryKind::CorrectSet, &key.canonical(), &key.workload, &cset);
    }
}

/// Every stored correct-run trace of `workload`, oldest first. Entries that
/// fail to decode are skipped — one rotten trace must not block training.
fn corpus_traces(corpus: &Corpus, workload: &str) -> Vec<Trace> {
    corpus
        .entries(Some(workload))
        .into_iter()
        .filter(|info| info.meta.kind == EntryKind::Trace)
        .filter_map(|info| corpus.get_trace(&info.meta.key).ok())
        .collect()
}

// ---------------------------------------------------------------------
// Training (server-side): clean traces -> offline training -> Correct Set.
// ---------------------------------------------------------------------

/// Machine configuration for server-side runs: the experiment harness's
/// defaults (interleaving jitter so seeded runs differ).
fn run_cfg(seed: u64) -> MachineConfig {
    MachineConfig { seed, jitter_ppm: 10_000, ..Default::default() }
}

/// The code length `w`'s traces are normalized by.
fn norm_of(w: &dyn Workload) -> usize {
    w.norm_code_len().unwrap_or_else(|| w.build(&w.default_params()).program.code_len())
}

/// Collect up to `want` correct-run traces of `w`'s clean configuration.
fn clean_traces(w: &dyn Workload, base_seed: u64, want: usize, norm: usize) -> Vec<Trace> {
    let mut traces = Vec::new();
    for offset in 0..(want as u64 * 2) {
        if traces.len() == want {
            break;
        }
        let seed = base_seed + offset;
        let built = w.build(&w.default_params().with_seed(seed));
        let mut collector = TraceCollector::new(norm);
        let mut machine = Machine::new(&built.program, run_cfg(seed));
        let outcome = machine.run_observed(&mut collector);
        if built.is_correct(&outcome) {
            traces.push(collector.into_trace());
        }
    }
    traces
}

/// Train the model a spec names: collect clean traces, run offline
/// training with the spec's pinned topology, and build the Correct Set
/// from ~20 fresh correct executions (disjoint seeds — the paper's
/// methodology; the failure itself is never reproduced).
///
/// # Errors
///
/// Returns [`ActError::UnknownWorkload`] for an unregistered workload and
/// [`ActError::Train`] when no correct training runs can be collected.
pub fn train_model(spec: &ModelSpec) -> Result<Model, ActError> {
    let w = registry::by_name(&spec.workload)
        .ok_or_else(|| ActError::UnknownWorkload(spec.workload.clone()))?;
    let norm = norm_of(w.as_ref());
    let want = (spec.traces.max(2)) as usize;
    let traces = clean_traces(w.as_ref(), spec.seed, want, norm);
    if traces.is_empty() {
        return Err(ActError::Train {
            workload: spec.workload.clone(),
            reason: "no correct training runs".into(),
        });
    }
    // Correct Set from fresh correct runs at disjoint seeds.
    let correct_traces = clean_traces(w.as_ref(), spec.seed + 100, 20, norm);
    finish_training(spec, norm, &traces, &correct_traces, "")
}

/// Train from a corpus's ingested correct-run traces — no simulator runs,
/// no registry lookup, so the daemon can serve workloads it only knows
/// through `TRACE_PUT`. The Correct Set is built from the same traces.
///
/// # Errors
///
/// Returns [`ActError::Train`] when fewer than two traces are supplied.
pub fn train_model_from_traces(spec: &ModelSpec, traces: Vec<Trace>) -> Result<Model, ActError> {
    if traces.len() < 2 {
        return Err(ActError::Train {
            workload: spec.workload.clone(),
            reason: format!("corpus holds {} trace(s); need at least 2", traces.len()),
        });
    }
    // Ingested traces carry the code length they were collected under.
    let norm = traces.iter().map(|t| t.code_len).max().unwrap_or(1).max(1);
    finish_training(spec, norm, &traces, &traces, " from corpus")
}

/// The shared back half of training: offline training with the spec's
/// pinned topology, then the Correct Set from `correct_traces`.
fn finish_training(
    spec: &ModelSpec,
    norm: usize,
    traces: &[Trace],
    correct_traces: &[Trace],
    source: &str,
) -> Result<Model, ActError> {
    let mut cfg = ActConfig::default();
    cfg.search.seq_lens = vec![spec.seq_len.max(1) as usize];
    cfg.search.hidden_sizes = vec![spec.hidden.max(1) as usize];
    cfg.train.max_epochs =
        if spec.max_epochs == 0 { DEFAULT_MAX_EPOCHS } else { spec.max_epochs as usize };
    cfg.train.learning_rate = 0.5;
    cfg.train.seed = spec.seed.wrapping_add(1);
    cfg.norm_code_len = norm;
    let trained = offline_train(norm, traces, &cfg);

    let seq_len = trained.store.seq_len();
    let mut correct = CorrectSet::default();
    for t in correct_traces {
        for s in positive_sequences(&observed_deps(t), seq_len) {
            correct.insert(&s.deps);
        }
    }

    let r = &trained.report;
    let summary = format!(
        "trained {}{}: topology {} (N = {}), {} traces, held-out FP {:.2}%, {} correct sequences",
        spec.workload,
        source,
        r.topology,
        r.seq_len,
        r.train_traces + r.test_traces,
        100.0 * r.test_fp_rate,
        correct.len()
    );
    Ok(Model { store: trained.store, correct, norm_code_len: norm, summary })
}

// ---------------------------------------------------------------------
// Correct Set persistence (one sequence per line).
// ---------------------------------------------------------------------

fn correct_set_text(set: &CorrectSet) -> String {
    use std::fmt::Write as _;
    let mut buf = String::new();
    writeln!(buf, "actcset v1 {}", set.seq_len()).expect("string write");
    for seq in set.sequences() {
        let mut first = true;
        for d in seq {
            if !first {
                buf.push(' ');
            }
            first = false;
            let _ = write!(buf, "{} {} {}", d.store_pc, d.load_pc, u8::from(d.inter_thread));
        }
        buf.push('\n');
    }
    buf
}

fn write_correct_set(path: &Path, set: &CorrectSet) -> std::io::Result<()> {
    let buf = correct_set_text(set);
    // Same atomic discipline as the weight files.
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    if let Err(e) = std::fs::write(&tmp, &buf) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    std::fs::rename(&tmp, path)
}

/// The corpus-store Correct Set blob: a `norm <code-len>` line (the one
/// model field the `actcset` format does not carry) followed by the same
/// text the `.cset` files hold.
fn cset_blob(model: &Model) -> Vec<u8> {
    format!("norm {}\n{}", model.norm_code_len, correct_set_text(&model.correct)).into_bytes()
}

fn parse_cset_blob(bytes: &[u8]) -> Option<(usize, CorrectSet)> {
    let text = std::str::from_utf8(bytes).ok()?;
    let (head, rest) = text.split_once('\n')?;
    let norm: usize = head.strip_prefix("norm ")?.trim().parse().ok()?;
    let set = correct_set_from_text(rest).ok()?;
    Some((norm, set))
}

fn read_correct_set(path: &Path) -> Result<CorrectSet, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    correct_set_from_text(&text)
}

fn correct_set_from_text(text: &str) -> Result<CorrectSet, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty correct-set file")?;
    let mut h = header.split_whitespace();
    if h.next() != Some("actcset") || h.next() != Some("v1") {
        return Err("bad correct-set header".into());
    }
    let n: usize = h.next().and_then(|v| v.parse().ok()).ok_or("bad correct-set seq_len")?;
    let mut set = CorrectSet::default();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let nums: Result<Vec<u64>, _> = line.split_whitespace().map(str::parse).collect();
        let nums = nums.map_err(|e| format!("line {}: {e}", i + 2))?;
        if n > 0 && nums.len() != 3 * n {
            return Err(format!("line {}: expected {} fields, got {}", i + 2, 3 * n, nums.len()));
        }
        let deps: Vec<RawDep> = nums
            .chunks(3)
            .map(|c| RawDep {
                store_pc: c[0] as u32,
                load_pc: c[1] as u32,
                inter_thread: c[2] != 0,
            })
            .collect();
        set.insert(&deps);
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(s: u32, l: u32) -> RawDep {
        RawDep { store_pc: s, load_pc: l, inter_thread: s % 2 == 0 }
    }

    #[test]
    fn correct_set_file_round_trips() {
        let dir = std::env::temp_dir().join(format!("act-cset-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.cset");
        let mut set = CorrectSet::default();
        set.insert(&[dep(1, 10), dep(2, 20)]);
        set.insert(&[dep(3, 30), dep(4, 40)]);
        write_correct_set(&path, &set).unwrap();
        let back = read_correct_set(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.seq_len(), 2);
        assert!(back.contains(&[dep(1, 10), dep(2, 20)]));
        assert!(back.contains(&[dep(3, 30), dep(4, 40)]));
        assert_eq!(back.matched_prefix(&[dep(1, 10), dep(9, 9)]), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_correct_set_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("act-cset-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.cset");
        std::fs::write(&path, "nope\n").unwrap();
        assert!(read_correct_set(&path).is_err());
        std::fs::write(&path, "actcset v1 2\n1 2\n").unwrap();
        assert!(read_correct_set(&path).is_err(), "wrong field count rejected");
        std::fs::write(&path, "actcset v1 2\n1 2 x 3 4 0\n").unwrap();
        assert!(read_correct_set(&path).is_err(), "non-numeric field rejected");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ModelCache::new(2, None);
        let model = |name: &str| {
            Arc::new(Model {
                store: WeightStore::new(act_nn::network::Topology::new(2, 2), 1, 1),
                correct: CorrectSet::default(),
                norm_code_len: 10,
                summary: name.to_string(),
            })
        };
        let key =
            |name: &str| ModelKey { workload: name.to_string(), seq_len: 1, hidden: 2, seed: 0 };
        cache.insert(key("a"), model("a"));
        cache.insert(key("b"), model("b"));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.lookup(&key("a")).is_some());
        cache.insert(key("c"), model("c"));
        assert_eq!(cache.resident(), 2);
        assert!(cache.lookup(&key("a")).is_some(), "recently used survives");
        assert!(cache.lookup(&key("b")).is_none(), "LRU evicted");
        assert!(cache.lookup(&key("c")).is_some());
    }

    #[test]
    fn unknown_workload_is_an_error_not_a_panic() {
        let cache = ModelCache::new(2, None);
        let err = cache.get_or_train(&ModelSpec::new("no-such-workload")).unwrap_err();
        assert!(matches!(err, ActError::UnknownWorkload(_)));
        assert!(err.to_string().contains("unknown workload"));
    }
}
