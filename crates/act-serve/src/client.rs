//! Minimal blocking client for the act-serve protocol: connect, send one
//! request frame, read one reply frame, done. Used by `act request` and the
//! integration tests.

use crate::proto::{read_frame, write_frame, ProtoError, Reply, Request};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// TCP address, e.g. `127.0.0.1:7411`.
    Tcp(String),
    /// Unix-domain-socket path.
    Unix(PathBuf),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// Client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/read/write failed.
    Io(io::Error),
    /// The daemon answered with something that is not a valid reply frame.
    Proto(ProtoError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        // A transport error mid-frame is more usefully reported as i/o.
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Proto(other),
        }
    }
}

/// Send `request` and wait for the reply (no timeout — training a cold
/// model can legitimately take a while).
pub fn request(endpoint: &Endpoint, request: &Request) -> Result<Reply, ClientError> {
    exchange(endpoint, request, None)
}

/// Send `request` with a socket read/write timeout.
pub fn request_timeout(
    endpoint: &Endpoint,
    request: &Request,
    timeout: Duration,
) -> Result<Reply, ClientError> {
    exchange(endpoint, request, Some(timeout))
}

fn exchange(
    endpoint: &Endpoint,
    request: &Request,
    timeout: Option<Duration>,
) -> Result<Reply, ClientError> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(timeout)?;
            stream.set_write_timeout(timeout)?;
            roundtrip(stream, request)
        }
        Endpoint::Unix(path) => {
            let stream = UnixStream::connect(path)?;
            stream.set_read_timeout(timeout)?;
            stream.set_write_timeout(timeout)?;
            roundtrip(stream, request)
        }
    }
}

fn roundtrip<S: Read + Write>(mut stream: S, request: &Request) -> Result<Reply, ClientError> {
    write_frame(&mut stream, &request.to_frame())?;
    let frame = read_frame(&mut stream)?;
    Ok(Reply::from_frame(&frame)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_display_with_scheme() {
        assert_eq!(Endpoint::Tcp("127.0.0.1:7411".into()).to_string(), "tcp://127.0.0.1:7411");
        assert_eq!(
            Endpoint::Unix(PathBuf::from("/tmp/act.sock")).to_string(),
            "unix:///tmp/act.sock"
        );
    }

    #[test]
    fn connect_to_dead_endpoint_is_io_error() {
        // Port 1 on loopback is essentially never listening.
        let err = request(&Endpoint::Tcp("127.0.0.1:1".into()), &Request::Status)
            .expect_err("connect must fail");
        assert!(matches!(err, ClientError::Io(_)), "got: {err}");
    }
}
