//! Minimal blocking client for the act-serve protocol: connect, send one
//! request frame, read one reply frame, done.
//!
//! The free functions here ([`request`], [`request_timeout`],
//! [`request_with`]) are **deprecated shims**: application code should use
//! the `act-client` crate's `Client` façade, which layers typed methods,
//! pipelined protocol-v4 sessions, and streaming ingest over the same
//! transport types. The types themselves — [`Endpoint`], [`ClientConfig`],
//! [`RetryPolicy`], [`ClientError`], [`connect_tcp`] — remain the shared
//! vocabulary `act-client` builds on and are not deprecated.
//!
//! Every exchange runs under a [`ClientConfig`]: a connect timeout, a
//! socket read/write timeout, and an opt-in single retry with jittered
//! backoff (seeded through `act-rng`, so retry sleeps are deterministic
//! per caller). The bare [`request`] helper uses [`ClientConfig::default`]
//! — bounded connect and generous-but-finite I/O — instead of the
//! hang-forever sockets it used to open.

use crate::proto::{read_frame, write_frame, ProtoError, Reply, Request};
use act_rng::rngs::StdRng;
use act_rng::{Rng, SeedableRng};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// TCP address, e.g. `127.0.0.1:7411`.
    Tcp(String),
    /// Unix-domain-socket path.
    Unix(PathBuf),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// Client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/read/write failed.
    Io(io::Error),
    /// The daemon answered with something that is not a valid reply frame.
    Proto(ProtoError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        // A transport error mid-frame is more usefully reported as i/o.
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Proto(other),
        }
    }
}

/// Opt-in single retry: after a transport failure or a `BUSY` reply, sleep
/// a jittered backoff and try once more. The jitter stream is a pure
/// function of `seed`, keeping retrying campaign jobs deterministic.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Base backoff; the actual sleep is uniform in `[base/2, base*3/2)`.
    pub backoff: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with the given base backoff and jitter seed.
    pub fn new(backoff: Duration, seed: u64) -> RetryPolicy {
        RetryPolicy { backoff, seed }
    }

    /// The jittered sleep before retry `attempt` (0-based). Public so
    /// `act-client` applies the same deterministic jitter to its own
    /// one-shot retries without going through the deprecated shims.
    pub fn sleep_for(&self, attempt: u64) -> Duration {
        let base = self.backoff.as_millis().max(1) as u64;
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(attempt));
        Duration::from_millis(base / 2 + rng.gen_range(0..base.max(1)))
    }
}

/// How an exchange connects, waits, and retries.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout (`None` = the OS default). Ignored for Unix
    /// sockets, whose connect cannot block on a dead network.
    pub connect_timeout: Option<Duration>,
    /// Socket read/write timeout (`None` = block forever).
    pub io_timeout: Option<Duration>,
    /// Retry once on transport failure or `BUSY` when set.
    pub retry: Option<RetryPolicy>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(10)),
            // Generous because a cold TRAIN legitimately takes a while —
            // but finite, so a wedged daemon cannot hang the caller.
            io_timeout: Some(Duration::from_secs(300)),
            retry: None,
        }
    }
}

impl ClientConfig {
    /// This config with a single-retry policy attached.
    pub fn with_retry(mut self, backoff: Duration, seed: u64) -> ClientConfig {
        self.retry = Some(RetryPolicy::new(backoff, seed));
        self
    }
}

/// Send `request` and wait for the reply under the default bounded
/// timeouts (no retry).
#[deprecated(
    since = "0.1.0",
    note = "use act_client::Client instead; this shim will be removed in 0.3"
)]
pub fn request(endpoint: &Endpoint, request: &Request) -> Result<Reply, ClientError> {
    #[allow(deprecated)]
    request_with(endpoint, request, &ClientConfig::default())
}

/// Send `request` with `timeout` as both the connect and the read/write
/// bound (no retry).
#[deprecated(
    since = "0.1.0",
    note = "use act_client::Client instead; this shim will be removed in 0.3"
)]
pub fn request_timeout(
    endpoint: &Endpoint,
    request: &Request,
    timeout: Duration,
) -> Result<Reply, ClientError> {
    let cfg =
        ClientConfig { connect_timeout: Some(timeout), io_timeout: Some(timeout), retry: None };
    #[allow(deprecated)]
    request_with(endpoint, request, &cfg)
}

/// Send `request` under an explicit [`ClientConfig`]. With a retry policy,
/// a transport failure or `BUSY` reply is retried exactly once after a
/// jittered backoff; the second outcome is returned as-is.
#[deprecated(
    since = "0.1.0",
    note = "use act_client::Client (builder-configured, pipelined, streaming) instead; \
            this shim will be removed in 0.3"
)]
pub fn request_with(
    endpoint: &Endpoint,
    request: &Request,
    cfg: &ClientConfig,
) -> Result<Reply, ClientError> {
    match exchange(endpoint, request, cfg) {
        outcome @ (Err(ClientError::Io(_)) | Ok(Reply::Busy)) => match &cfg.retry {
            Some(policy) => {
                std::thread::sleep(policy.sleep_for(0));
                exchange(endpoint, request, cfg)
            }
            None => outcome,
        },
        outcome => outcome,
    }
}

/// Open a TCP connection with a connect timeout, trying each resolved
/// address. Exposed for callers that pool raw connections (`act-gate`).
pub fn connect_tcp(addr: &str, timeout: Option<Duration>) -> io::Result<TcpStream> {
    let Some(t) = timeout else { return TcpStream::connect(addr) };
    let mut last = None;
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, t) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no addresses resolved")))
}

fn exchange(
    endpoint: &Endpoint,
    request: &Request,
    cfg: &ClientConfig,
) -> Result<Reply, ClientError> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let stream = connect_tcp(addr, cfg.connect_timeout)?;
            stream.set_read_timeout(cfg.io_timeout)?;
            stream.set_write_timeout(cfg.io_timeout)?;
            roundtrip(stream, request)
        }
        Endpoint::Unix(path) => {
            let stream = UnixStream::connect(path)?;
            stream.set_read_timeout(cfg.io_timeout)?;
            stream.set_write_timeout(cfg.io_timeout)?;
            roundtrip(stream, request)
        }
    }
}

fn roundtrip<S: Read + Write>(mut stream: S, request: &Request) -> Result<Reply, ClientError> {
    write_frame(&mut stream, &request.to_frame())?;
    let frame = read_frame(&mut stream)?;
    Ok(Reply::from_frame(&frame)?)
}

#[cfg(test)]
#[allow(deprecated)] // the shims' own behavior (timeouts, retry) is still under test
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn endpoints_display_with_scheme() {
        assert_eq!(Endpoint::Tcp("127.0.0.1:7411".into()).to_string(), "tcp://127.0.0.1:7411");
        assert_eq!(
            Endpoint::Unix(PathBuf::from("/tmp/act.sock")).to_string(),
            "unix:///tmp/act.sock"
        );
    }

    #[test]
    fn connect_to_dead_endpoint_is_io_error() {
        // Port 1 on loopback is essentially never listening.
        let err = request(&Endpoint::Tcp("127.0.0.1:1".into()), &Request::Status)
            .expect_err("connect must fail");
        assert!(matches!(err, ClientError::Io(_)), "got: {err}");
    }

    #[test]
    fn retry_policy_jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::new(Duration::from_millis(100), 7);
        let a = policy.sleep_for(0);
        assert_eq!(a, policy.sleep_for(0), "same seed, same sleep");
        assert_ne!(a, policy.sleep_for(1), "attempts draw different jitter");
        for attempt in 0..32 {
            let s = policy.sleep_for(attempt).as_millis() as u64;
            assert!((50..150).contains(&s), "sleep {s}ms escaped [base/2, base*3/2)");
        }
    }

    #[test]
    fn retry_attempts_a_dead_endpoint_twice() {
        let cfg = ClientConfig {
            connect_timeout: Some(Duration::from_millis(200)),
            io_timeout: Some(Duration::from_millis(200)),
            retry: Some(RetryPolicy::new(Duration::from_millis(40), 1)),
        };
        let start = Instant::now();
        let err = request_with(&Endpoint::Tcp("127.0.0.1:1".into()), &Request::Status, &cfg)
            .expect_err("both attempts must fail");
        assert!(matches!(err, ClientError::Io(_)), "got: {err}");
        // The backoff sleep (>= 20ms) proves the second attempt happened.
        assert!(start.elapsed() >= Duration::from_millis(20), "no backoff observed");
    }
}
