//! End-to-end daemon tests: boot an in-process server on an ephemeral
//! loopback port and drive it with real client connections.
//!
//! Covers the acceptance criteria for the service:
//! - a crashing request (`__panic`) gets an `ERROR` reply while the daemon
//!   keeps serving others;
//! - a repeated request is answered from the model cache (the `STATUS`
//!   cache-hit counter increases);
//! - a full queue yields `BUSY` immediately, never accepted-then-dropped.

#![allow(deprecated)] // this suite IS the one-shot compatibility reference

use act_serve::client::{request, Endpoint};
use act_serve::proto::{ModelSpec, Reply, Request};
use act_serve::server::{ServeConfig, Server};
use act_trace::collector::TraceCollector;
use act_trace::io::trace_to_bytes;
use act_workloads::registry;
use std::time::Duration;

/// Boot a daemon on 127.0.0.1:0 and return it with its client endpoint.
fn boot(workers: usize, queue_depth: usize) -> (Server, Endpoint) {
    let cfg = ServeConfig {
        tcp_addr: Some("127.0.0.1:0".to_string()),
        workers,
        queue_depth,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("daemon boots");
    let endpoint = Endpoint::Tcp(server.tcp_addr().expect("tcp bound").to_string());
    (server, endpoint)
}

/// A small spec that trains in well under a second.
fn tiny_spec(workload: &str) -> ModelSpec {
    let mut spec = ModelSpec::new(workload);
    spec.traces = 2;
    spec.seq_len = 2;
    spec.hidden = 4;
    spec.max_epochs = 30;
    spec
}

/// Serialize a failing `seq` trace the way a production client would ship
/// one (run the triggered configuration until it actually fails).
fn failing_trace_bytes() -> Vec<u8> {
    let w = registry::by_name("seq").expect("seq workload");
    let norm = w.norm_code_len().unwrap_or_else(|| w.build(&w.default_params()).program.code_len());
    for seed in 0..64 {
        let built = w.build(&w.default_params().triggered().with_seed(seed));
        let mut collector = TraceCollector::new(norm);
        let run_cfg =
            act_sim::config::MachineConfig { seed, jitter_ppm: 10_000, ..Default::default() };
        let mut machine = act_sim::machine::Machine::new(&built.program, run_cfg);
        let outcome = machine.run_observed(&mut collector);
        if built.is_failure(&outcome) {
            return trace_to_bytes(&collector.into_trace());
        }
    }
    panic!("no failing seq run in 64 seeds");
}

/// Pull one `key value` counter out of a `STATUS` reply.
fn counter(status: &str, key: &str) -> u64 {
    status
        .lines()
        .find_map(|l| l.strip_prefix(key).map(|rest| rest.trim().parse().expect("counter value")))
        .unwrap_or_else(|| panic!("no `{key}` in status:\n{status}"))
}

fn status_of(endpoint: &Endpoint) -> String {
    match request(endpoint, &Request::Status).expect("status reply") {
        // A v2 client gets the text block plus the metrics snapshot; the
        // text is the part these tests grep.
        Reply::StatusMetrics(text, _) => text,
        Reply::StatusText(text) => text,
        other => panic!("unexpected status reply: {other:?}"),
    }
}

#[test]
fn concurrent_clients_crash_isolation_and_cache_hits() {
    let (server, endpoint) = boot(2, 16);
    let spec = tiny_spec("seq");
    let trace = failing_trace_bytes();

    // Warm the model once so the concurrent phase exercises cache hits.
    match request(&endpoint, &Request::Train(spec.clone())).expect("train reply") {
        Reply::Trained(summary) => {
            assert!(summary.contains("trained seq"), "summary: {summary}")
        }
        other => panic!("unexpected train reply: {other:?}"),
    }

    // Four concurrent clients: three real diagnoses plus one crasher.
    let mut clients = Vec::new();
    for _ in 0..3 {
        let endpoint = endpoint.clone();
        let req = Request::Diagnose(spec.clone(), trace.clone());
        clients.push(std::thread::spawn(move || request(&endpoint, &req).expect("reply")));
    }
    let crasher = {
        let endpoint = endpoint.clone();
        let req = Request::Diagnose(ModelSpec::new("__panic"), trace.clone());
        std::thread::spawn(move || request(&endpoint, &req).expect("reply"))
    };

    for client in clients {
        match client.join().expect("client thread") {
            Reply::Diagnosis(text) => {
                assert!(text.starts_with("diagnosis workload=seq"), "text: {text}");
                assert!(text.contains("model=cache-hit"), "expected a cache hit: {text}");
            }
            other => panic!("unexpected diagnose reply: {other:?}"),
        }
    }
    match crasher.join().expect("crasher thread") {
        Reply::Error(msg) => {
            assert!(msg.contains("request crashed"), "msg: {msg}");
            assert!(msg.contains("__panic"), "msg: {msg}");
        }
        other => panic!("crashing request must yield ERROR, got: {other:?}"),
    }

    // The daemon survived the crash and still serves.
    match request(&endpoint, &Request::Diagnose(spec.clone(), trace)).expect("post-crash reply") {
        Reply::Diagnosis(text) => assert!(text.contains("model=cache-hit"), "text: {text}"),
        other => panic!("unexpected post-crash reply: {other:?}"),
    }

    let status = status_of(&endpoint);
    assert!(counter(&status, "cache_hits") >= 4, "status:\n{status}");
    assert_eq!(counter(&status, "cache_misses"), 1, "status:\n{status}");
    assert_eq!(counter(&status, "requests_crashed"), 1, "status:\n{status}");
    assert!(counter(&status, "requests_served") >= 5, "status:\n{status}");

    match request(&endpoint, &Request::Shutdown).expect("shutdown reply") {
        Reply::Bye => {}
        other => panic!("unexpected shutdown reply: {other:?}"),
    }
    server.join();
}

#[test]
fn full_queue_answers_busy_instead_of_accepting() {
    // One worker, queue depth one: a 600ms sleeper on the worker plus one
    // queued job saturate the daemon.
    let (server, endpoint) = boot(1, 1);
    let sleeper = |ms: u64| {
        let mut spec = ModelSpec::new("__sleep");
        spec.seed = ms;
        Request::Train(spec)
    };

    let occupant = {
        let endpoint = endpoint.clone();
        let req = sleeper(600);
        std::thread::spawn(move || request(&endpoint, &req).expect("reply"))
    };
    std::thread::sleep(Duration::from_millis(150)); // worker now busy
    let queued = {
        let endpoint = endpoint.clone();
        let req = sleeper(10);
        std::thread::spawn(move || request(&endpoint, &req).expect("reply"))
    };
    std::thread::sleep(Duration::from_millis(150)); // queue now full

    // STATUS still answers while saturated (acceptor fast path) ...
    let status = status_of(&endpoint);
    assert_eq!(counter(&status, "queue_depth"), 1, "status:\n{status}");

    // ... but new work is refused outright.
    match request(&endpoint, &sleeper(1)).expect("busy reply") {
        Reply::Busy => {}
        other => panic!("expected BUSY from a full queue, got: {other:?}"),
    }

    assert!(matches!(occupant.join().expect("occupant"), Reply::Trained(_)));
    assert!(matches!(queued.join().expect("queued"), Reply::Trained(_)));

    let status = status_of(&endpoint);
    assert_eq!(counter(&status, "requests_rejected_busy"), 1, "status:\n{status}");
    assert_eq!(counter(&status, "requests_served"), 2, "status:\n{status}");

    assert!(matches!(request(&endpoint, &Request::Shutdown).expect("bye"), Reply::Bye));
    server.join();
}

#[test]
fn status_speaks_both_protocol_versions() {
    use act_serve::proto::{read_frame, write_frame, FrameKind};
    use std::io::Write as _;
    let (server, endpoint) = boot(1, 4);
    let addr = match &endpoint {
        Endpoint::Tcp(addr) => addr.clone(),
        other => panic!("tcp endpoint expected, got {other}"),
    };

    // An old (v1) client: frame stamped version 1 must get a v1-stamped
    // plain STATUS_TEXT reply — nothing a v1 decoder would reject.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    write_frame(&mut stream, &Request::Status.to_frame().with_version(1)).expect("send v1");
    stream.flush().expect("flush");
    let frame = read_frame(&mut stream).expect("v1 reply frame");
    assert_eq!(frame.version, 1, "reply restamped for the v1 requester");
    assert_eq!(frame.kind, FrameKind::StatusText);
    match Reply::from_frame(&frame).expect("decode") {
        Reply::StatusText(text) => assert!(text.contains("requests_served"), "text: {text}"),
        other => panic!("v1 STATUS must get StatusText, got {other:?}"),
    }

    // A v2 client against this v3 daemon: the reply is restamped v2 and is
    // the StatusMetrics frame a v2 decoder already knows — the v3 frame
    // kinds never appear unsolicited.
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    write_frame(&mut stream, &Request::Status.to_frame().with_version(2)).expect("send v2");
    stream.flush().expect("flush");
    let frame = read_frame(&mut stream).expect("v2 reply frame");
    assert_eq!(frame.version, 2, "reply restamped for the v2 requester");
    assert_eq!(frame.kind, FrameKind::StatusMetrics);

    // A new (v3) client gets the metrics snapshot alongside the text, and
    // the two surfaces agree on the counters.
    match request(&endpoint, &Request::Status).expect("status reply") {
        Reply::StatusMetrics(text, snap) => {
            assert!(snap.counter("req_status").expect("req_status counter") >= 1);
            assert!(snap.histogram("service_us").is_some(), "latency histogram present");
            let served = counter(&text, "requests_served");
            assert_eq!(snap.counter("requests_served"), Some(served));
        }
        other => panic!("v2 STATUS must get StatusMetrics, got {other:?}"),
    }

    assert!(matches!(request(&endpoint, &Request::Shutdown).expect("bye"), Reply::Bye));
    server.join();
}

/// Serialize one *correct* `seq` run (the kind a production client ships
/// into the corpus with `TRACE_PUT`).
fn correct_trace_bytes(base_seed: u64) -> Vec<u8> {
    let w = registry::by_name("seq").expect("seq workload");
    let norm = w.norm_code_len().unwrap_or_else(|| w.build(&w.default_params()).program.code_len());
    for seed in base_seed..base_seed + 64 {
        let built = w.build(&w.default_params().with_seed(seed));
        let mut collector = TraceCollector::new(norm);
        let run_cfg =
            act_sim::config::MachineConfig { seed, jitter_ppm: 10_000, ..Default::default() };
        let mut machine = act_sim::machine::Machine::new(&built.program, run_cfg);
        let outcome = machine.run_observed(&mut collector);
        if built.is_correct(&outcome) {
            return trace_to_bytes(&collector.into_trace());
        }
    }
    panic!("no correct seq run in 64 seeds");
}

#[test]
fn corpus_round_trips_traces_trains_from_store_and_persists_models() {
    let dir = std::env::temp_dir().join(format!("act-serve-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let boot_with_corpus = || {
        let cfg = ServeConfig {
            tcp_addr: Some("127.0.0.1:0".to_string()),
            workers: 1,
            queue_depth: 8,
            corpus_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg).expect("daemon boots with corpus");
        let endpoint = Endpoint::Tcp(server.tcp_addr().expect("tcp bound").to_string());
        (server, endpoint)
    };
    let (server, endpoint) = boot_with_corpus();

    // Ship two correct-run traces into the store.
    let t0 = correct_trace_bytes(0);
    let t1 = correct_trace_bytes(100);
    for (key, bytes) in [("seq-clean-0", &t0), ("seq-clean-1", &t1)] {
        let req = Request::TracePut {
            key: key.to_string(),
            workload: "seq".to_string(),
            trace: bytes.clone(),
        };
        match request(&endpoint, &req).expect("put reply") {
            Reply::Stored(summary) => assert!(summary.contains(key), "summary: {summary}"),
            other => panic!("unexpected put reply: {other:?}"),
        }
    }

    // Round trip: TRACE_GET hands back byte-identical text.
    match request(&endpoint, &Request::TraceGet { key: "seq-clean-0".into() }).expect("get") {
        Reply::TraceData(bytes) => assert_eq!(bytes, t0, "trace round trip must be lossless"),
        other => panic!("unexpected get reply: {other:?}"),
    }
    match request(&endpoint, &Request::TraceGet { key: "no-such-key".into() }).expect("miss") {
        Reply::Error(msg) => assert!(msg.contains("trace get failed"), "msg: {msg}"),
        other => panic!("missing key must yield ERROR, got: {other:?}"),
    }

    // A hostile payload is rejected with ERROR, not stored.
    let bad = Request::TracePut {
        key: "bad".into(),
        workload: "seq".into(),
        trace: b"not a trace".to_vec(),
    };
    match request(&endpoint, &bad).expect("bad put reply") {
        Reply::Error(msg) => assert!(msg.contains("trace put failed"), "msg: {msg}"),
        other => panic!("hostile payload must yield ERROR, got: {other:?}"),
    }

    // TRAIN now prefers the two ingested traces over simulator runs.
    let spec = tiny_spec("seq");
    match request(&endpoint, &Request::Train(spec.clone())).expect("train reply") {
        Reply::Trained(summary) => {
            assert!(summary.contains("from corpus"), "summary: {summary}")
        }
        other => panic!("unexpected train reply: {other:?}"),
    }

    let status = status_of(&endpoint);
    assert_eq!(counter(&status, "requests_served"), 4, "status:\n{status}");
    assert_eq!(counter(&status, "requests_errored"), 2, "status:\n{status}");
    assert!(matches!(request(&endpoint, &Request::Shutdown).expect("bye"), Reply::Bye));
    server.join();

    // Restart on the same corpus: the model comes back from the store
    // (no retraining) and the traces survived.
    let (server, endpoint) = boot_with_corpus();
    match request(&endpoint, &Request::Train(spec)).expect("train reply") {
        Reply::Trained(summary) => {
            assert!(summary.contains("loaded from corpus store"), "summary: {summary}");
            assert!(summary.contains("cache-hit:store"), "summary: {summary}");
        }
        other => panic!("unexpected train reply: {other:?}"),
    }
    match request(&endpoint, &Request::TraceGet { key: "seq-clean-1".into() }).expect("get") {
        Reply::TraceData(bytes) => assert_eq!(bytes, t1, "trace survives a restart"),
        other => panic!("unexpected get reply: {other:?}"),
    }
    let status = status_of(&endpoint);
    assert!(counter(&status, "cache_hits") >= 1, "store hit counts as a hit:\n{status}");
    assert_eq!(counter(&status, "cache_misses"), 0, "status:\n{status}");
    assert!(matches!(request(&endpoint, &Request::Shutdown).expect("bye"), Reply::Bye));
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_frames_without_a_corpus_answer_error() {
    let (server, endpoint) = boot(1, 4);
    let req = Request::TracePut {
        key: "k".into(),
        workload: "seq".into(),
        trace: correct_trace_bytes(0),
    };
    match request(&endpoint, &req).expect("reply") {
        Reply::Error(msg) => assert!(msg.contains("--corpus"), "msg: {msg}"),
        other => panic!("expected ERROR without a corpus, got: {other:?}"),
    }
    match request(&endpoint, &Request::TraceGet { key: "k".into() }).expect("reply") {
        Reply::Error(msg) => assert!(msg.contains("--corpus"), "msg: {msg}"),
        other => panic!("expected ERROR without a corpus, got: {other:?}"),
    }
    assert!(matches!(request(&endpoint, &Request::Shutdown).expect("bye"), Reply::Bye));
    server.join();
}

#[test]
fn diagnose_on_a_cold_daemon_trains_then_ranks() {
    // A single DIAGNOSE against a cold daemon must train the model inline
    // and still come back with the ranked header.
    let (server, endpoint) = boot(1, 4);
    let req = Request::Diagnose(tiny_spec("seq"), failing_trace_bytes());
    match request(&endpoint, &req).expect("reply") {
        Reply::Diagnosis(text) => {
            assert!(text.starts_with("diagnosis workload=seq model=trained"), "text: {text}");
            assert!(text.contains("logged="), "text: {text}");
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    assert!(matches!(request(&endpoint, &Request::Shutdown).expect("bye"), Reply::Bye));
    server.join();
}
