//! Coalescing-scheduler tests: drive raw protocol-v4 sessions against a
//! daemon with batching on and assert the three properties the scheduler
//! must hold —
//! - coalesced replies are byte-identical to what a non-batching daemon
//!   answers (batching is invisible on the wire);
//! - a lone request is dispatched after at most the gather window, never
//!   stranded waiting for companions that will not come;
//! - requests for different models never share a batch, and every
//!   request id is answered exactly once.

use act_serve::proto::{read_frame, write_frame, ModelSpec, Reply, Request};
use act_serve::server::{ServeConfig, Server};
use act_trace::collector::TraceCollector;
use act_trace::io::trace_to_bytes;
use act_workloads::registry;
use std::collections::HashMap;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Boot a daemon on 127.0.0.1:0 with the given coalescing policy.
fn boot(batch_size: usize, batch_wait: Duration) -> (Server, String) {
    let cfg = ServeConfig {
        tcp_addr: Some("127.0.0.1:0".to_string()),
        workers: 1,
        queue_depth: 32,
        batch_size,
        batch_wait,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("daemon boots");
    let addr = server.tcp_addr().expect("tcp bound").to_string();
    (server, addr)
}

/// A small spec that trains in well under a second.
fn tiny_spec(seed: u64) -> ModelSpec {
    let mut spec = ModelSpec::new("seq");
    spec.traces = 2;
    spec.seq_len = 2;
    spec.hidden = 4;
    spec.max_epochs = 30;
    spec.seed = seed;
    spec
}

/// Serialize a failing `seq` trace the way a production client ships one.
fn failing_trace_bytes() -> Vec<u8> {
    let w = registry::by_name("seq").expect("seq workload");
    let norm = w.norm_code_len().unwrap_or_else(|| w.build(&w.default_params()).program.code_len());
    for seed in 0..64 {
        let built = w.build(&w.default_params().triggered().with_seed(seed));
        let mut collector = TraceCollector::new(norm);
        let run_cfg =
            act_sim::config::MachineConfig { seed, jitter_ppm: 10_000, ..Default::default() };
        let mut machine = act_sim::machine::Machine::new(&built.program, run_cfg);
        let outcome = machine.run_observed(&mut collector);
        if built.is_failure(&outcome) {
            return trace_to_bytes(&collector.into_trace());
        }
    }
    panic!("no failing seq run in 64 seeds");
}

/// One raw one-shot v4 exchange (fresh connection, one frame each way).
fn oneshot(addr: &str, request: &Request) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(&mut stream, &request.to_frame()).expect("send");
    let frame = read_frame(&mut stream).expect("reply frame");
    Reply::from_frame(&frame).expect("decode reply")
}

/// A raw multiplexed v4 session (HELLO already acknowledged).
struct RawSession {
    stream: TcpStream,
}

impl RawSession {
    fn open(addr: &str, window: u32) -> RawSession {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write_frame(&mut stream, &Request::Hello { window }.to_frame()).expect("send HELLO");
        let frame = read_frame(&mut stream).expect("HELLO_ACK frame");
        match Reply::from_frame(&frame).expect("decode") {
            Reply::HelloAck { window: granted } => assert!(granted >= window, "window granted"),
            other => panic!("expected HELLO_ACK, got {other:?}"),
        }
        RawSession { stream }
    }

    fn send(&mut self, request_id: u32, request: &Request) {
        write_frame(&mut self.stream, &request.to_frame().with_request(request_id))
            .expect("send request");
    }

    /// Read `n` replies, keyed by the request id each answers.
    fn collect(&mut self, n: usize) -> HashMap<u32, Reply> {
        let mut replies = HashMap::new();
        for _ in 0..n {
            let frame = read_frame(&mut self.stream).expect("reply frame");
            let id = frame.request_id;
            let reply = Reply::from_frame(&frame).expect("decode reply");
            assert!(replies.insert(id, reply).is_none(), "request {id} answered twice");
        }
        replies
    }
}

/// Pull one `key value` counter out of the `STATUS` text block.
fn counter(addr: &str, key: &str) -> u64 {
    let text = match oneshot(addr, &Request::Status) {
        Reply::StatusMetrics(text, _) => text,
        Reply::StatusText(text) => text,
        other => panic!("unexpected status reply: {other:?}"),
    };
    text.lines()
        .find_map(|l| l.strip_prefix(key).map(|rest| rest.trim().parse().expect("counter value")))
        .unwrap_or_else(|| panic!("no `{key}` in status:\n{text}"))
}

fn shutdown(server: Server, addr: &str) {
    assert!(matches!(oneshot(addr, &Request::Shutdown), Reply::Bye));
    server.join();
}

#[test]
fn coalesced_replies_are_byte_identical_to_sequential_ones() {
    // A generous gather window and a single worker make coalescing
    // deterministic: the worker leads a batch from the first queued
    // diagnose while the session's remaining requests arrive.
    let (batched, batched_addr) = boot(16, Duration::from_millis(50));
    let (sequential, sequential_addr) = boot(1, Duration::ZERO);
    let spec = tiny_spec(0);
    let trace = failing_trace_bytes();

    // Warm both daemons so every diagnose is a cache hit (training is
    // deterministic, so the two models are identical).
    for addr in [&batched_addr, &sequential_addr] {
        match oneshot(addr, &Request::Train(spec.clone())) {
            Reply::Trained(_) => {}
            other => panic!("unexpected train reply: {other:?}"),
        }
    }
    let expected = match oneshot(&sequential_addr, &Request::Diagnose(spec.clone(), trace.clone()))
    {
        Reply::Diagnosis(text) => text,
        other => panic!("unexpected sequential reply: {other:?}"),
    };

    let mut session = RawSession::open(&batched_addr, 16);
    const BURST: u32 = 8;
    for id in 1..=BURST {
        session.send(id, &Request::Diagnose(spec.clone(), trace.clone()));
    }
    let replies = session.collect(BURST as usize);
    for id in 1..=BURST {
        match replies.get(&id) {
            Some(Reply::Diagnosis(text)) => assert_eq!(
                text, &expected,
                "coalesced reply {id} must be byte-identical to the sequential one"
            ),
            other => panic!("request {id}: unexpected reply {other:?}"),
        }
    }

    assert!(counter(&batched_addr, "coalesced_batches") >= 1);
    assert!(counter(&batched_addr, "coalesce_hits") >= 2, "the burst must actually coalesce");
    shutdown(batched, &batched_addr);
    shutdown(sequential, &sequential_addr);
}

#[test]
fn a_lone_request_is_dispatched_when_the_gather_window_closes() {
    // Quarter-second gather window: a lone request must still be answered
    // promptly after the window closes, not stranded until some timeout.
    let (server, addr) = boot(16, Duration::from_millis(250));
    let spec = tiny_spec(0);
    let trace = failing_trace_bytes();
    match oneshot(&addr, &Request::Train(spec.clone())) {
        Reply::Trained(_) => {}
        other => panic!("unexpected train reply: {other:?}"),
    }

    let start = Instant::now();
    match oneshot(&addr, &Request::Diagnose(spec.clone(), trace)) {
        Reply::Diagnosis(text) => assert!(text.contains("model=cache-hit"), "text: {text}"),
        other => panic!("unexpected reply: {other:?}"),
    }
    let elapsed = start.elapsed();
    assert!(elapsed < Duration::from_secs(5), "lone request stranded for {elapsed:?}");
    assert_eq!(counter(&addr, "coalesce_misses"), 1);
    shutdown(server, &addr);
}

#[test]
fn different_models_never_share_a_batch_and_every_id_is_answered() {
    let (server, addr) = boot(16, Duration::from_millis(50));
    let (spec_a, spec_b) = (tiny_spec(0), tiny_spec(1));
    let trace = failing_trace_bytes();
    for spec in [&spec_a, &spec_b] {
        match oneshot(&addr, &Request::Train(spec.clone())) {
            Reply::Trained(_) => {}
            other => panic!("unexpected train reply: {other:?}"),
        }
    }

    // Interleave two model keys (same workload, different training seed)
    // on one session; the scheduler must split them into per-key batches
    // and still answer all twelve ids.
    let mut session = RawSession::open(&addr, 16);
    const BURST: u32 = 12;
    for id in 1..=BURST {
        let spec = if id % 2 == 0 { &spec_b } else { &spec_a };
        session.send(id, &Request::Diagnose(spec.clone(), trace.clone()));
    }
    let replies = session.collect(BURST as usize);
    for id in 1..=BURST {
        match replies.get(&id) {
            Some(Reply::Diagnosis(text)) => {
                assert!(text.starts_with("diagnosis workload=seq"), "text: {text}")
            }
            other => panic!("request {id}: unexpected reply {other:?}"),
        }
    }
    // Two keys cannot fit one batch, so at least two were dispatched.
    assert!(counter(&addr, "coalesced_batches") >= 2);
    shutdown(server, &addr);
}

#[test]
fn zero_batch_size_is_rejected_at_boot() {
    let cfg = ServeConfig {
        tcp_addr: Some("127.0.0.1:0".to_string()),
        batch_size: 0,
        ..ServeConfig::default()
    };
    match Server::start(cfg) {
        Err(err) => assert!(err.to_string().contains("batch size"), "err: {err}"),
        Ok(_) => panic!("batch_size 0 must be rejected"),
    }
}
