//! # act-rng — in-tree deterministic pseudo-random numbers
//!
//! A small, dependency-free PRNG that replaces the external `rand` crate so
//! the workspace builds and tests with **no registry access**. The API
//! mirrors the subset of `rand` 0.8 the repo uses (`rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` / `gen_bool`, and
//! `seq::SliceRandom::shuffle`), so call sites only swap the crate path.
//!
//! The generator is **xoshiro256\*\*** (Blackman & Vigna), seeded by
//! expanding a 64-bit seed through **splitmix64** — the exact construction
//! the xoshiro authors recommend for seeding from small seeds. Sequences are
//! deterministic across platforms and releases: the fleet layer's
//! byte-identical-report guarantee (see `act-fleet`) rests on this.
//!
//! Not cryptographic, and deliberately so: ACT's simulations only need
//! well-mixed, *reproducible* streams keyed by seed.

use std::ops::Range;

/// Seeding interface, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the used subset of `rand::Rng`.
pub trait Rng {
    /// The core primitive: the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        f64_from_bits(self.next_u64()) < p
    }
}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `lo..hi` (half-open, `lo < hi`).
    fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// `[0, 1)` double from 53 high bits (the standard bit-shift construction).
#[inline]
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `[0, 1)` single from 24 high bits.
#[inline]
fn f32_from_bits(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                // Span fits in the unsigned twin even for signed extremes.
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                // Widening-multiply range reduction (Lemire, without the
                // rejection step): deterministic and bias < 2^-64 per draw,
                // plenty for simulation seeding.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as $u).wrapping_add(draw as $u) as $t
            }
        }
    )+};
}

impl_sample_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

impl SampleUniform for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64_from_bits(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f32_from_bits(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* seeded via
    /// splitmix64. (The name keeps call sites identical to `rand`'s
    /// `rngs::StdRng`; the algorithm differs — and is stable by contract.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// One splitmix64 step: the recommended seed expander for xoshiro.
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            // splitmix64 output is a bijection of its state sequence, so the
            // four words are never all zero (xoshiro's one forbidden state).
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** reference update.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place uniform shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&v));
            let u = rng.gen_range(0u32..1_000_000);
            assert!(u < 1_000_000);
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let d = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_the_span() {
        // Every residue of a small range appears: the reduction is not
        // collapsing the stream.
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
