//! Steady-state allocation audit for the *batched* classify path.
//!
//! `classify_batch` extends the hot-path contract (DESIGN.md § Performance)
//! to batched execution: after the first call has sized the persistent
//! batch scratch and the caller's output vectors have reached capacity,
//! repeated batches must not touch the heap. A counting global allocator
//! makes that a test instead of a code-review property.
//!
//! This file holds exactly one `#[test]` so no sibling test thread
//! allocates concurrently and trips the counter.

use act_nn::network::{Network, Topology};
use act_nn::sigmoid::SigmoidMode;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn batched_classify_does_not_allocate_in_steady_state() {
    // The paper's deployed shape at the coalescer's default batch bound.
    let (inputs, batch) = (10, 16);
    let mut net = Network::random(Topology::new(inputs, 10), 0.2, 42);
    let xs: Vec<f32> = (0..inputs * batch).map(|i| ((i * 13 + 7) % 100) as f32 / 100.0).collect();
    let mut out = Vec::new();
    let mut valid = Vec::new();

    for mode in [SigmoidMode::Exact, SigmoidMode::Table] {
        net.set_sigmoid(mode);
        // Warm up: the first call sizes the batch scratch and grows the
        // caller-owned output vectors to their steady-state capacity.
        net.classify_batch(&xs, &mut out, &mut valid);
        // Best of three windows: the loop below is deterministic, so a real
        // allocation in the batch path would fire in *every* window (1000+
        // counts each); the libtest harness thread, however, occasionally
        // allocates concurrently and a single window can catch that ambient
        // noise. One clean window proves the code path is allocation-free.
        let mut best = usize::MAX;
        for _window in 0..3 {
            let before = ALLOCS.load(Ordering::SeqCst);
            let mut sink = 0.0f32;
            for _ in 0..1000 {
                out.clear();
                valid.clear();
                net.classify_batch(&xs, &mut out, &mut valid);
                sink += out[0] + out[batch - 1];
            }
            let after = ALLOCS.load(Ordering::SeqCst);
            assert!(sink.is_finite());
            assert_eq!(out.len(), batch);
            assert_eq!(valid.len(), batch);
            best = best.min(after - before);
            if best == 0 {
                break;
            }
        }
        assert_eq!(
            best, 0,
            "{:?}: at least {} heap allocations in every one of three 1000-call \
             steady-state classify_batch windows",
            mode, best
        );
    }
}
