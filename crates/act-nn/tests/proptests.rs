//! Property-based tests for the neural substrate.

// Property suites are opt-in: run with `--features slow-tests` (they use
// the in-tree proptest shim, so they work offline too).
#![cfg(feature = "slow-tests")]

use act_nn::network::{Network, Topology};
use act_nn::pipeline::{NnPipeline, PipelineConfig};
use act_nn::sigmoid::{sigmoid, SigmoidTable};
use proptest::prelude::*;

proptest! {
    /// Network outputs are always valid probabilities, and flat-weight
    /// round-tripping preserves behaviour exactly.
    #[test]
    fn outputs_are_probabilities_and_weights_round_trip(
        seed in any::<u64>(),
        inputs in 1usize..10,
        hidden in 1usize..10,
        x in prop::collection::vec(0.0f32..1.0, 10),
    ) {
        let topo = Topology::new(inputs, hidden);
        let mut net = Network::random(topo, 0.2, seed);
        let x = &x[..inputs];
        let o = net.predict(x);
        prop_assert!(o > 0.0 && o < 1.0);
        let mut copy = Network::from_flat(topo, &net.weights_flat(), 0.2);
        prop_assert_eq!(o, copy.predict(x));
    }

    /// Training toward a target never produces NaN and moves the output in
    /// the right direction on average.
    #[test]
    fn training_is_stable(
        seed in any::<u64>(),
        x in prop::collection::vec(0.0f32..1.0, 6),
        t in 0u8..2,
    ) {
        let mut net = Network::random(Topology::new(6, 4), 0.5, seed);
        let target = t as f32;
        let before = net.predict(&x);
        for _ in 0..50 {
            net.train(&x, target);
        }
        let after = net.predict(&x);
        prop_assert!(after.is_finite());
        prop_assert!((after - target).abs() <= (before - target).abs() + 1e-3);
    }

    /// The tiled forward pass is bit-identical to a direct transcription of
    /// the documented summation contract (DESIGN.md § Performance): each
    /// hidden row accumulates bias-first then left-to-right over the
    /// inputs; the output row accumulates in four lanes (element `i` into
    /// lane `i % 4`, the bias folded in as a `1.0` activation) reduced as
    /// `(l0 + l1) + (l2 + l3)`.
    #[test]
    fn predict_matches_reference_contract(
        seed in any::<u64>(),
        inputs in 1usize..24,
        hidden in 1usize..16,
        x in prop::collection::vec(0.0f32..1.0, 24),
    ) {
        let topo = Topology::new(inputs, hidden);
        let mut net = Network::random(topo, 0.2, seed);
        let x = &x[..inputs];
        let flat = net.weights_flat();
        let cols = inputs + 1;
        let mut act = vec![0.0f32; hidden + 1];
        for h in 0..hidden {
            let row = &flat[h * cols..(h + 1) * cols];
            let mut a = row[inputs]; // bias first
            for (w, &xc) in row[..inputs].iter().zip(x) {
                a += w * xc;
            }
            act[h] = sigmoid(a);
        }
        act[hidden] = 1.0;
        let out_row = &flat[hidden * cols..];
        let mut lanes = [0.0f32; 4];
        for (i, (&w, &a)) in out_row.iter().zip(&act).enumerate() {
            lanes[i % 4] += w * a;
        }
        let reference = sigmoid((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
        let o = net.predict(x);
        prop_assert_eq!(o.to_bits(), reference.to_bits());
    }

    /// Batched inference is bit-identical to the sequential loop it
    /// replaces — for any batch size, topology, and input contents, and
    /// across model mutation (training between calls must leave both
    /// paths in lockstep). This is the invariant the coalescing server
    /// leans on: a client cannot tell from the bytes of a reply whether
    /// its request ran alone or inside a batch.
    #[test]
    fn batched_predict_is_bit_identical_to_sequential(
        seed in any::<u64>(),
        inputs in 1usize..24,
        hidden in 1usize..16,
        batch in 1usize..33,
        raw in prop::collection::vec(0.0f32..1.0, 24 * 32),
    ) {
        let topo = Topology::new(inputs, hidden);
        let mut net = Network::random(topo, 0.2, seed);
        let mut reference = Network::from_flat(topo, &net.weights_flat(), 0.2);
        let xs = &raw[..inputs * batch];
        for round in 0..2 {
            let seq: Vec<f32> = xs.chunks_exact(inputs).map(|x| reference.predict(x)).collect();
            let mut out = Vec::new();
            let mut valid = Vec::new();
            net.classify_batch(xs, &mut out, &mut valid);
            prop_assert_eq!(out.len(), batch);
            for (row, (&batched, &sequential)) in out.iter().zip(&seq).enumerate() {
                prop_assert!(
                    batched.to_bits() == sequential.to_bits(),
                    "round {} row {}: batched {} != sequential {}",
                    round, row, batched, sequential
                );
                prop_assert_eq!(valid[row], Network::classify(sequential));
            }
            // Mutate both models identically, then re-check: batching must
            // stay bit-exact on a trained (non-random) weight matrix too.
            net.train(&xs[..inputs], 1.0);
            reference.train(&xs[..inputs], 1.0);
        }
    }

    /// The sigmoid table approximates the exact function everywhere.
    #[test]
    fn sigmoid_table_is_accurate(x in -20.0f32..20.0) {
        let t = SigmoidTable::hardware_default();
        prop_assert!((t.eval(x) - sigmoid(x)).abs() < 2e-3);
    }

    /// Pipeline invariants under arbitrary offer patterns: occupancy never
    /// exceeds capacity, accepted = serviced + queued, rejected only when
    /// full.
    #[test]
    fn pipeline_conserves_inputs(
        offers in prop::collection::vec(0u64..5, 1..200),
        fifo in 1usize..16,
        units in 1usize..10,
    ) {
        let cfg = PipelineConfig {
            fifo_capacity: fifo,
            mul_add_units: units,
            ..Default::default()
        };
        let mut p = NnPipeline::new(cfg);
        let mut now = 0;
        for gap in &offers {
            now += gap;
            let _ = p.try_accept(now);
            prop_assert!(p.occupancy() <= fifo);
            let s = p.stats();
            prop_assert_eq!(s.accepted, s.serviced + p.occupancy() as u64);
        }
        // Eventually everything drains.
        p.tick(now + 10_000);
        prop_assert_eq!(p.occupancy(), 0);
        let s = p.stats();
        prop_assert_eq!(s.accepted, s.serviced);
    }
}
