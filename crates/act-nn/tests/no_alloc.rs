//! Steady-state allocation audit for the inference/training hot path.
//!
//! The hot-path contract (DESIGN.md § Performance) is that `predict` and
//! `train` touch the heap only while warming up their persistent scratch
//! buffers — never per call. A counting global allocator makes that a test
//! instead of a code-review property.
//!
//! This file holds exactly one `#[test]` so no sibling test thread
//! allocates concurrently and trips the counter.

use act_nn::network::{Network, Topology};
use act_nn::sigmoid::SigmoidMode;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn predict_and_train_do_not_allocate_in_steady_state() {
    // The paper's deployed shape: 10 inputs (M), up to 10 hidden units.
    let mut net = Network::random(Topology::new(10, 10), 0.2, 42);
    let xs: Vec<Vec<f32>> =
        (0..8).map(|i| (0..10).map(|c| ((i * 13 + c * 7) % 10) as f32 / 10.0).collect()).collect();

    for mode in [SigmoidMode::Exact, SigmoidMode::Table] {
        net.set_sigmoid(mode);
        // Warm up: first calls may size persistent scratch.
        for x in &xs {
            net.predict(x);
            net.train(x, 1.0);
        }
        let before = ALLOCS.load(Ordering::SeqCst);
        let mut sink = 0.0f32;
        for round in 0..1000 {
            let x = &xs[round % xs.len()];
            sink += net.predict(x);
            sink += net.train(x, if round % 3 == 0 { 0.0 } else { 1.0 });
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        assert!(sink.is_finite());
        assert_eq!(
            after - before,
            0,
            "{:?}: {} heap allocations across 2000 steady-state predict/train calls",
            mode,
            after - before
        );
    }
}
