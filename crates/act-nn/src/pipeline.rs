//! Cycle model of ACT's partially configurable neural hardware: the
//! three-stage pipeline of §IV-A.
//!
//! * **S1** — the input layer: an input FIFO. If the FIFO is full the
//!   corresponding load is stalled at retirement (back-pressure).
//! * **S2** — the hidden layer: `M` neurons, each with `x` multiply-add
//!   units, an accumulator, and a sigmoid table. A neuron takes
//!   `T = ceil(M/x)·t_mul_add + t_rest` cycles.
//! * **S3** — the single output neuron, another `T` cycles.
//!
//! During online *testing* the stages are pipelined: with a full FIFO the
//! network accepts one input every `T` cycles. During online *training*
//! back-propagation makes the stage links bidirectional, so an input
//! occupies the whole network and one is accepted every `4T` cycles.
//!
//! The pipeline models *timing only*; the functional result comes from
//! [`crate::network::Network`]. The ACT module combines the two.

use crate::error::ConfigError;

/// Parameters of the neuron/pipeline hardware (paper Table III, "Parameters
/// of a neuron").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Maximum inputs per neuron, `M` (fixes the hardware loop length).
    pub max_inputs: usize,
    /// Multiply-add units per neuron, `x` (the latency knob: 1, 2, 5, 10).
    pub mul_add_units: usize,
    /// Latency of one multiply-add, in cycles.
    pub t_mul_add: u64,
    /// Latency of the accumulator stage, in cycles.
    pub t_accumulator: u64,
    /// Latency of the sigmoid table, in cycles.
    pub t_sigmoid: u64,
    /// Input FIFO capacity (4, 8, or 16 in the paper's sweep).
    pub fifo_capacity: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            max_inputs: 10,
            mul_add_units: 1,
            t_mul_add: 1,
            t_accumulator: 1,
            t_sigmoid: 1,
            fifo_capacity: 8,
        }
    }
}

impl PipelineConfig {
    /// `T`: cycles for one neuron to produce its output.
    pub fn neuron_latency(&self) -> u64 {
        let serial = self.max_inputs.div_ceil(self.mul_add_units) as u64 * self.t_mul_add;
        serial + self.t_accumulator + self.t_sigmoid
    }

    /// End-to-end latency of one prediction: S1 (1 cycle) + S2 + S3.
    pub fn prediction_latency(&self) -> u64 {
        1 + 2 * self.neuron_latency()
    }

    /// Cycles between accepted inputs when the FIFO is backed up.
    pub fn service_interval(&self, training: bool) -> u64 {
        let t = self.neuron_latency();
        if training {
            4 * t
        } else {
            t
        }
    }

    /// Validate the configuration, naming the offending field on failure.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_inputs == 0 {
            return Err(ConfigError::new("max_inputs", "must be at least 1"));
        }
        if self.mul_add_units == 0 {
            return Err(ConfigError::new("mul_add_units", "must be at least 1"));
        }
        if self.mul_add_units > self.max_inputs {
            return Err(ConfigError::new(
                "mul_add_units",
                format!("must not exceed max_inputs ({})", self.max_inputs),
            ));
        }
        if self.t_mul_add == 0 {
            return Err(ConfigError::new("t_mul_add", "must be at least 1 cycle"));
        }
        if self.fifo_capacity == 0 {
            return Err(ConfigError::new("fifo_capacity", "must be at least 1"));
        }
        Ok(())
    }
}

/// Throughput/occupancy counters for the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Inputs accepted into the FIFO.
    pub accepted: u64,
    /// Offers rejected because the FIFO was full (each costs the core a
    /// stall cycle).
    pub rejected: u64,
    /// Inputs fully serviced.
    pub serviced: u64,
}

/// The timing model of the three-stage pipeline.
#[derive(Debug, Clone)]
pub struct NnPipeline {
    cfg: PipelineConfig,
    occupancy: usize,
    /// Cycle at which the S2 stage can begin servicing the next input.
    busy_until: u64,
    training: bool,
    stats: PipelineStats,
}

impl NnPipeline {
    /// Build a pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`PipelineConfig::validate`].
    pub fn new(cfg: PipelineConfig) -> Self {
        cfg.validate().expect("valid PipelineConfig");
        NnPipeline {
            cfg,
            occupancy: 0,
            busy_until: 0,
            training: false,
            stats: PipelineStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Switch between testing (pipelined) and training (serialized) service.
    /// Mode switches take effect for inputs not yet in service.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the pipeline is in training mode.
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Counters.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Current FIFO occupancy.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Advance time to `now`, servicing queued inputs.
    pub fn tick(&mut self, now: u64) {
        // Service starts back-fill elapsed time: if `tick` jumps forward,
        // each queued input is charged one interval from the previous
        // service's end, exactly as if we had ticked every cycle.
        while self.occupancy > 0 && self.busy_until <= now {
            self.occupancy -= 1;
            self.stats.serviced += 1;
            self.busy_until += self.cfg.service_interval(self.training);
        }
    }

    /// Try to accept one input at cycle `now`. Returns `false` (and records
    /// a rejection) when the FIFO is full — the caller must stall the load.
    pub fn try_accept(&mut self, now: u64) -> bool {
        self.tick(now);
        if self.occupancy >= self.cfg.fifo_capacity {
            self.stats.rejected += 1;
            return false;
        }
        if self.occupancy == 0 && self.busy_until <= now {
            // Idle pipeline: this input enters service immediately.
            self.busy_until = now + self.cfg.service_interval(self.training);
            self.stats.accepted += 1;
            self.stats.serviced += 1;
            return true;
        }
        self.occupancy += 1;
        self.stats.accepted += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neuron_latency_formula() {
        let mut cfg = PipelineConfig::default();
        // M=10, x=1: 10*1 + 1 + 1 = 12.
        assert_eq!(cfg.neuron_latency(), 12);
        cfg.mul_add_units = 2; // ceil(10/2)=5 -> 7
        assert_eq!(cfg.neuron_latency(), 7);
        cfg.mul_add_units = 5; // 2 -> 4
        assert_eq!(cfg.neuron_latency(), 4);
        cfg.mul_add_units = 10; // 1 -> 3
        assert_eq!(cfg.neuron_latency(), 3);
    }

    #[test]
    fn more_mul_add_units_reduce_latency_monotonically() {
        let lat = |x| PipelineConfig { mul_add_units: x, ..Default::default() }.neuron_latency();
        assert!(lat(1) >= lat(2));
        assert!(lat(2) >= lat(5));
        assert!(lat(5) >= lat(10));
    }

    #[test]
    fn prediction_latency_is_s1_plus_two_stages() {
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.prediction_latency(), 1 + 2 * 12);
    }

    #[test]
    fn training_interval_is_4t() {
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.service_interval(false), 12);
        assert_eq!(cfg.service_interval(true), 48);
    }

    #[test]
    fn idle_pipeline_accepts_immediately() {
        let mut p = NnPipeline::new(PipelineConfig::default());
        assert!(p.try_accept(100));
        assert_eq!(p.occupancy(), 0, "entered service directly");
        assert_eq!(p.stats().accepted, 1);
    }

    #[test]
    fn fifo_fills_then_rejects() {
        let cfg = PipelineConfig { fifo_capacity: 4, ..Default::default() };
        let mut p = NnPipeline::new(cfg);
        // Accept in the same cycle: 1 in service + 4 in FIFO = 5 accepted.
        for i in 0..5 {
            assert!(p.try_accept(0), "accept {i}");
        }
        assert!(!p.try_accept(0), "FIFO full");
        assert_eq!(p.stats().rejected, 1);
    }

    #[test]
    fn backed_up_pipeline_services_every_t() {
        let cfg = PipelineConfig { fifo_capacity: 4, ..Default::default() };
        let t = cfg.neuron_latency();
        let mut p = NnPipeline::new(cfg);
        for _ in 0..5 {
            assert!(p.try_accept(0));
        }
        assert!(!p.try_accept(0));
        // After T cycles one slot frees.
        assert!(p.try_accept(t));
        // And immediately after, it is full again.
        assert!(!p.try_accept(t));
        // After the remaining queue drains (4 more intervals) it all empties.
        p.tick(t * 10);
        assert_eq!(p.occupancy(), 0);
        assert_eq!(p.stats().serviced, 6);
    }

    #[test]
    fn training_mode_drains_slower() {
        let mk = |training: bool| {
            let mut p = NnPipeline::new(PipelineConfig { fifo_capacity: 8, ..Default::default() });
            p.set_training(training);
            for _ in 0..8 {
                assert!(p.try_accept(0));
            }
            p.tick(60);
            p.stats().serviced
        };
        let tested = mk(false);
        let trained = mk(true);
        assert!(tested > trained, "testing drains faster: {tested} vs {trained}");
    }

    #[test]
    #[should_panic]
    fn zero_fifo_is_invalid() {
        let _ = NnPipeline::new(PipelineConfig { fifo_capacity: 0, ..Default::default() });
    }

    #[test]
    fn validate_names_the_offending_field() {
        let err = PipelineConfig { fifo_capacity: 0, ..Default::default() }.validate().unwrap_err();
        assert_eq!(err.field, "fifo_capacity");
        let err =
            PipelineConfig { mul_add_units: 99, ..Default::default() }.validate().unwrap_err();
        assert_eq!(err.field, "mul_add_units");
        assert!(err.to_string().contains("must not exceed max_inputs (10)"), "{err}");
        assert!(PipelineConfig::default().validate().is_ok());
    }
}
