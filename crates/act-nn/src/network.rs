//! The one-hidden-layer neural network (ACT's partially configurable
//! topology `i × h × 1`, with `1 ≤ i, h ≤ M`).
//!
//! Learning is standard online back-propagation with a sigmoid activation,
//! exactly as §II-A describes: the output error is
//! `err = o·(1−o)·(t−o)`, weights are updated along the gradient scaled by
//! the learning rate, and the error is propagated to the hidden layer in
//! proportion to the link weights.

use crate::sigmoid::{sigmoid, sigmoid_deriv_from_output, sigmoid_map, SigmoidMode, SigmoidTable};
use act_rng::rngs::StdRng;
use act_rng::{Rng, SeedableRng};

/// A network shape: `inputs × hidden × 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Number of inputs (`i`).
    pub inputs: usize,
    /// Number of hidden neurons (`h`).
    pub hidden: usize,
}

impl Topology {
    /// Construct a topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(inputs: usize, hidden: usize) -> Self {
        assert!(inputs > 0 && hidden > 0, "topology dimensions must be positive");
        Topology { inputs, hidden }
    }

    /// Total number of link weights (including biases): the size of the flat
    /// weight vector stored per thread in the program binary.
    pub fn weight_count(&self) -> usize {
        self.hidden * (self.inputs + 1) + (self.hidden + 1)
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x1", self.inputs, self.hidden)
    }
}

/// Classification threshold: outputs at or above this are "valid".
pub const VALID_THRESHOLD: f32 = 0.5;

/// Round up to a multiple of the 4-lane accumulation width.
fn pad4(n: usize) -> usize {
    (n + 3) & !3
}

/// A one-hidden-layer MLP with a single output neuron.
///
/// # Weight layouts
///
/// The **serialization** layout — what [`Network::from_flat`] consumes and
/// [`Network::weights_flat`] produces, and what `ldwt`/`stwt` stream to the
/// program binary — is `hidden` rows of `inputs + 1` (last element of each
/// row is the bias), then the output row of `hidden + 1`.
///
/// The **compute** layout is different: hidden rows are grouped into tiles
/// of four and stored column-major within each tile
/// (`w[tile][col][row_in_tile]`, with the bias as column `inputs`), followed
/// by the output row padded to a multiple of four. The tile layout is what
/// makes the forward pass fast on a 4-lane SIMD machine: one broadcast of
/// `x[col]` accumulates four rows' dot products in four register lanes, and
/// the hidden layer finishes with **no horizontal reductions at all**
/// (DESIGN.md § Performance). Rows past `hidden` in the last tile are
/// all-zero and stay zero through training (their error terms are pinned to
/// zero), so they never affect the output.
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    /// All link weights in the *compute* layout (see the struct docs).
    weights: Vec<f32>,
    /// Learning rate (the paper uses 0.2).
    lr: f32,
    sigmoid: SigmoidMode,
    /// Scratch: hidden activations, padded to a whole number of 4-lanes.
    /// `hidden_act[hidden]` holds the folded 1.0 bias input of the output
    /// row; other pad lanes are zero and stay zero.
    hidden_act: Vec<f32>,
    /// Scratch: hidden-layer errors (training), padded like the tiles.
    /// Pad entries are permanently zero so pad rows never learn.
    err_h: Vec<f32>,
    /// Scratch: per-element hidden activations for [`Network::predict_batch`],
    /// `stride` floats per batch element (same invariants as `hidden_act`).
    /// Grows to the largest batch seen, then never reallocates.
    batch_act: Vec<f32>,
}

impl Network {
    /// A network with small random weights in `[-0.5, 0.5]`.
    pub fn random(topo: Topology, lr: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Hidden rows first, then the output row — one stream, the same
        // draw order the serialization layout uses.
        let flat: Vec<f32> = (0..topo.weight_count()).map(|_| rng.gen_range(-0.5..0.5)).collect();
        Self::with_flat_weights(topo, &flat, lr)
    }

    /// Build the compute-layout storage from serialization-layout weights.
    fn with_flat_weights(topo: Topology, flat: &[f32], lr: f32) -> Self {
        let ni = topo.inputs;
        let nh = topo.hidden;
        let cols = ni + 1;
        let nh_pad = pad4(nh);
        let out_stride = pad4(nh + 1);
        let mut weights = vec![0.0; nh_pad * cols + out_stride];
        for h in 0..nh {
            let tile = &mut weights[(h / 4) * 4 * cols..];
            for c in 0..cols {
                tile[4 * c + h % 4] = flat[h * cols + c];
            }
        }
        weights[nh_pad * cols..nh_pad * cols + nh + 1].copy_from_slice(&flat[nh * cols..]);
        Network {
            topo,
            weights,
            lr,
            sigmoid: SigmoidMode::Exact,
            hidden_act: vec![0.0; nh_pad.max(out_stride)],
            err_h: vec![0.0; nh_pad],
            batch_act: Vec::new(),
        }
    }

    /// Rebuild a network from a flat weight vector in the serialization
    /// layout (see the struct docs).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != topo.weight_count()`.
    pub fn from_flat(topo: Topology, weights: &[f32], lr: f32) -> Self {
        assert_eq!(weights.len(), topo.weight_count(), "weight vector size mismatch");
        Self::with_flat_weights(topo, weights, lr)
    }

    /// Switch the activation implementation (exact vs hardware table).
    pub fn set_sigmoid(&mut self, mode: SigmoidMode) {
        self.sigmoid = mode;
    }

    /// The network's topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// All weights in the order `ldwt`/`stwt` would stream them: hidden
    /// rows (bias last in each row), then the output row. Gathers out of
    /// the tiled compute layout — one pass, done on the cold store path
    /// (thread end, checkpoint), never per prediction.
    pub fn weights_flat(&self) -> Vec<f32> {
        let ni = self.topo.inputs;
        let nh = self.topo.hidden;
        let cols = ni + 1;
        let mut flat = vec![0.0; self.topo.weight_count()];
        for h in 0..nh {
            let tile = &self.weights[(h / 4) * 4 * cols..];
            for c in 0..cols {
                flat[h * cols + c] = tile[4 * c + h % 4];
            }
        }
        flat[nh * cols..].copy_from_slice(&self.weights[pad4(nh) * cols..][..nh + 1]);
        flat
    }

    /// Dot product of two equal-length slices whose length is a multiple of
    /// four, accumulated in **four fixed lanes**: element `i` goes to lane
    /// `i % 4`, lanes combine as `(l0 + l1) + (l2 + l3)`. This is the
    /// output-row summation contract (DESIGN.md § Performance):
    /// deterministic for a given length and auto-vectorizable with no
    /// scalar tail.
    #[inline]
    fn dot_lanes(row: &[f32], v: &[f32]) -> f32 {
        debug_assert_eq!(row.len(), v.len());
        debug_assert_eq!(row.len() % 4, 0);
        let mut l = [0.0f32; 4];
        for (r, x) in row.chunks_exact(4).zip(v.chunks_exact(4)) {
            l[0] += r[0] * x[0];
            l[1] += r[1] * x[1];
            l[2] += r[2] * x[2];
            l[3] += r[3] * x[3];
        }
        (l[0] + l[1]) + (l[2] + l[3])
    }

    /// Forward pass. Returns the output activation in `(0, 1)`.
    ///
    /// Hidden pre-activations accumulate tile-by-tile: lane `r` of a tile's
    /// accumulator starts at the row's bias and adds `w[4t+r][c] · x[c]`
    /// left-to-right over the columns — plain sequential summation per row,
    /// so the result is independent of the tiling. `x[c]` is read with
    /// *scalar* loads on purpose: the caller typically just wrote `x`
    /// feature-by-feature (the encoder), and reading it back with vector
    /// loads would stall on failed store-to-load forwarding. The activation
    /// is then applied over the whole padded slice at once
    /// ([`sigmoid_map`]), and the output row uses the [`Self::dot_lanes`]
    /// contract with the bias folded in as the `hidden_act[hidden] = 1.0`
    /// element.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != topology().inputs`.
    #[inline]
    pub fn predict(&mut self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.topo.inputs, "input size mismatch");
        let ni = self.topo.inputs;
        let nh = self.topo.hidden;
        let cols = ni + 1;
        let (tiles, out_w) = self.weights.split_at(pad4(nh) * cols);
        for (ti, tile) in tiles.chunks_exact(4 * cols).enumerate() {
            let (xw, bias) = tile.split_at(4 * ni);
            let mut acc = [bias[0], bias[1], bias[2], bias[3]];
            for (col, &xc) in xw.chunks_exact(4).zip(x.iter()) {
                acc[0] += col[0] * xc;
                acc[1] += col[1] * xc;
                acc[2] += col[2] * xc;
                acc[3] += col[3] * xc;
            }
            self.hidden_act[4 * ti..4 * ti + 4].copy_from_slice(&acc);
        }
        // Dispatch on the sigmoid mode *once* per prediction, not once per
        // neuron; the exact path applies the activation as one outlined
        // vectorized map over the slice.
        // The map covers the pad lanes too: `pad4(nh)` elements is a whole
        // number of 4-wide chunks (a `..nh` map would end in scalar-tail
        // sigmoids, each costing as much as a whole 4-wide chunk). Pad
        // lanes end up holding `sigmoid(0) = 0.5`, which is inert — their
        // output-row weights are zero — and the bias slot is overwritten
        // with its 1.0 right after.
        let nh_pad = pad4(nh);
        let out_stride = pad4(nh + 1);
        match self.sigmoid {
            SigmoidMode::Exact => {
                sigmoid_map(&mut self.hidden_act[..nh_pad]);
                self.hidden_act[nh] = 1.0;
                sigmoid(Self::dot_lanes(out_w, &self.hidden_act[..out_stride]))
            }
            SigmoidMode::Table => {
                let t = SigmoidTable::hardware_default();
                for a in &mut self.hidden_act[..nh_pad] {
                    *a = t.eval(*a);
                }
                self.hidden_act[nh] = 1.0;
                t.eval(Self::dot_lanes(out_w, &self.hidden_act[..out_stride]))
            }
        }
    }

    /// Whether an output classifies the sequence as valid.
    pub fn classify(output: f32) -> bool {
        output >= VALID_THRESHOLD
    }

    /// Batched forward pass: evaluate `B = xs.len() / inputs` inputs, laid
    /// out back to back in `xs`, and append their outputs to `out` in
    /// order. **Bit-identical** to calling [`Network::predict`] on each
    /// input in turn — see the determinism argument below — but much
    /// faster for B > 1: the hidden layer runs as a tiled matrix-matrix
    /// product in 4×4 register blocks (four hidden rows × four batch
    /// elements), so each tile's weight columns are loaded once per block
    /// of four inputs instead of once per input.
    ///
    /// Determinism: per element, every hidden row still accumulates
    /// bias-first then columns left-to-right (the blocking interleaves
    /// *elements*, never an element's own additions), the activation map
    /// covers the same padded slice, and the output row uses the same
    /// [`Self::dot_lanes`] contract over a per-element scratch slice that
    /// carries the exact invariants of `hidden_act` (pad lanes zero, bias
    /// slot 1.0). Same inputs, same float ops, same order ⇒ same bits.
    ///
    /// Scratch (`batch_act`) grows to the largest batch seen and is then
    /// reused: a steady-state caller with a bounded batch size allocates
    /// nothing (`out` reuses the caller's capacity; only `extend` beyond
    /// it allocates).
    ///
    /// # Panics
    ///
    /// Panics if `xs.len()` is not a multiple of `topology().inputs`.
    pub fn predict_batch(&mut self, xs: &[f32], out: &mut Vec<f32>) {
        let ni = self.topo.inputs;
        let nh = self.topo.hidden;
        assert_eq!(xs.len() % ni, 0, "batch input size mismatch");
        let b = xs.len() / ni;
        let cols = ni + 1;
        let nh_pad = pad4(nh);
        let out_stride = pad4(nh + 1);
        let stride = nh_pad.max(out_stride);
        if self.batch_act.len() < b * stride {
            // Fresh slots start (and pad slots stay) zero, the same
            // invariant `hidden_act` is constructed with.
            self.batch_act.resize(b * stride, 0.0);
        }

        let (tiles, out_w) = self.weights.split_at(nh_pad * cols);
        for (ti, tile) in tiles.chunks_exact(4 * cols).enumerate() {
            let (xw, bias) = tile.split_at(4 * ni);
            let bias = [bias[0], bias[1], bias[2], bias[3]];
            // Full 4-element blocks: 16 accumulator lanes, one weight
            // column load shared by four inputs.
            let mut e = 0;
            while e + 4 <= b {
                let x0 = &xs[e * ni..][..ni];
                let x1 = &xs[(e + 1) * ni..][..ni];
                let x2 = &xs[(e + 2) * ni..][..ni];
                let x3 = &xs[(e + 3) * ni..][..ni];
                let (mut a0, mut a1, mut a2, mut a3) = (bias, bias, bias, bias);
                for (c, col) in xw.chunks_exact(4).enumerate() {
                    let (y0, y1, y2, y3) = (x0[c], x1[c], x2[c], x3[c]);
                    a0[0] += col[0] * y0;
                    a0[1] += col[1] * y0;
                    a0[2] += col[2] * y0;
                    a0[3] += col[3] * y0;
                    a1[0] += col[0] * y1;
                    a1[1] += col[1] * y1;
                    a1[2] += col[2] * y1;
                    a1[3] += col[3] * y1;
                    a2[0] += col[0] * y2;
                    a2[1] += col[1] * y2;
                    a2[2] += col[2] * y2;
                    a2[3] += col[3] * y2;
                    a3[0] += col[0] * y3;
                    a3[1] += col[1] * y3;
                    a3[2] += col[2] * y3;
                    a3[3] += col[3] * y3;
                }
                for (k, acc) in [a0, a1, a2, a3].iter().enumerate() {
                    self.batch_act[(e + k) * stride + 4 * ti..][..4].copy_from_slice(acc);
                }
                e += 4;
            }
            // Remainder elements: the scalar shape of `predict`'s loop.
            while e < b {
                let x = &xs[e * ni..][..ni];
                let mut acc = bias;
                for (col, &xc) in xw.chunks_exact(4).zip(x.iter()) {
                    acc[0] += col[0] * xc;
                    acc[1] += col[1] * xc;
                    acc[2] += col[2] * xc;
                    acc[3] += col[3] * xc;
                }
                self.batch_act[e * stride + 4 * ti..][..4].copy_from_slice(&acc);
                e += 1;
            }
        }

        out.reserve(b);
        for e in 0..b {
            let h = &mut self.batch_act[e * stride..][..stride];
            let o = match self.sigmoid {
                SigmoidMode::Exact => {
                    sigmoid_map(&mut h[..nh_pad]);
                    h[nh] = 1.0;
                    sigmoid(Self::dot_lanes(out_w, &h[..out_stride]))
                }
                SigmoidMode::Table => {
                    let t = SigmoidTable::hardware_default();
                    for a in &mut h[..nh_pad] {
                        *a = t.eval(*a);
                    }
                    h[nh] = 1.0;
                    t.eval(Self::dot_lanes(out_w, &h[..out_stride]))
                }
            };
            out.push(o);
        }
    }

    /// Batched classify: [`Network::predict_batch`] plus the
    /// [`Network::classify`] threshold per element, appended to `valid`.
    /// `out` receives the raw outputs (same contract as `predict_batch`).
    pub fn classify_batch(&mut self, xs: &[f32], out: &mut Vec<f32>, valid: &mut Vec<bool>) {
        let first = out.len();
        self.predict_batch(xs, out);
        valid.reserve(out.len() - first);
        valid.extend(out[first..].iter().map(|&o| Self::classify(o)));
    }

    /// One step of online back-propagation toward target `t` (0 or 1).
    /// Returns the output *before* the update.
    ///
    /// The output-layer gradient uses the cross-entropy form `(t − o)`
    /// rather than the squared-error form `o·(1−o)·(t−o)` that §II-A
    /// writes: the extra `o·(1−o)` factor vanishes when the output
    /// saturates on the wrong side (the "flat spot"), which prevents the
    /// rare invalid examples from ever pulling a confidently-valid output
    /// down. Cross-entropy is the standard cure and what practical MLP
    /// libraries (the paper trains with OpenCV) effectively deliver.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != topology().inputs`.
    pub fn train(&mut self, x: &[f32], t: f32) -> f32 {
        let o = self.predict(x);
        let err_o = t - o;

        let ni = self.topo.inputs;
        let nh = self.topo.hidden;
        let cols = ni + 1;
        let tile_len = pad4(nh) * cols;

        // Hidden-layer errors use the *pre-update* output weights. `err_h`
        // is a persistent scratch field (pads pinned to zero so pad rows
        // never learn): the steady-state training loop allocates nothing.
        for h in 0..nh {
            self.err_h[h] =
                sigmoid_deriv_from_output(self.hidden_act[h]) * self.weights[tile_len + h] * err_o;
        }

        let (tiles, out_w) = self.weights.split_at_mut(tile_len);

        // Update output weights. `hidden_act[nh]` still holds the folded
        // 1.0 bias input from the forward pass, so one loop updates the
        // bias along with the links.
        let scale = self.lr * err_o;
        for (w, &a) in out_w[..nh + 1].iter_mut().zip(&self.hidden_act) {
            *w += scale * a;
        }

        // Update hidden weights tile-by-tile: the same broadcast shape as
        // the forward pass, with the bias column stepped by `s · 1.0`.
        for (ti, tile) in tiles.chunks_exact_mut(4 * cols).enumerate() {
            let s = [
                self.lr * self.err_h[4 * ti],
                self.lr * self.err_h[4 * ti + 1],
                self.lr * self.err_h[4 * ti + 2],
                self.lr * self.err_h[4 * ti + 3],
            ];
            let (xw, bias) = tile.split_at_mut(4 * ni);
            for (col, &xc) in xw.chunks_exact_mut(4).zip(x.iter()) {
                col[0] += s[0] * xc;
                col[1] += s[1] * xc;
                col[2] += s[2] * xc;
                col[3] += s[3] * xc;
            }
            bias[0] += s[0];
            bias[1] += s[1];
            bias[2] += s[2];
            bias[3] += s[3];
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_count_matches_flat_round_trip() {
        let topo = Topology::new(4, 3);
        assert_eq!(topo.weight_count(), 3 * 5 + 4);
        let mut net = Network::random(topo, 0.2, 1);
        let flat = net.weights_flat();
        assert_eq!(flat.len(), topo.weight_count());
        let mut clone = Network::from_flat(topo, &flat, 0.2);
        let x = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(net.predict(&x), clone.predict(&x));
    }

    #[test]
    fn flat_round_trip_is_exact_for_many_shapes() {
        // The tiled compute layout must gather back to exactly the flat
        // vector it was scattered from, whatever the padding situation.
        for (ni, nh) in [(1, 1), (3, 4), (4, 4), (10, 10), (7, 9), (12, 8), (5, 13)] {
            let topo = Topology::new(ni, nh);
            let net = Network::random(topo, 0.2, (ni * 31 + nh) as u64);
            let flat = net.weights_flat();
            let again = Network::from_flat(topo, &flat, 0.2).weights_flat();
            assert_eq!(flat, again, "round trip for {topo}");
        }
    }

    #[test]
    fn training_keeps_pad_rows_zero() {
        // Pad rows in the last tile must stay all-zero through training,
        // or they would leak into flat serialization of a *wider* reload.
        let topo = Topology::new(3, 5); // nh = 5 -> 3 pad rows
        let mut net = Network::random(topo, 0.5, 11);
        let x = [0.2, 0.7, 0.4];
        for i in 0..50 {
            net.train(&x, (i % 2) as f32);
        }
        let cols = topo.inputs + 1;
        for row in 5..8 {
            let tile = &net.weights[(row / 4) * 4 * cols..];
            for c in 0..cols {
                assert_eq!(tile[4 * c + row % 4], 0.0, "pad row {row} col {c} drifted");
            }
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_flat_rejects_wrong_length() {
        let _ = Network::from_flat(Topology::new(2, 2), &[0.0; 5], 0.2);
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn predict_rejects_wrong_input_len() {
        let mut net = Network::random(Topology::new(3, 2), 0.2, 0);
        let _ = net.predict(&[0.0, 1.0]);
    }

    #[test]
    fn output_is_a_probability() {
        let mut net = Network::random(Topology::new(6, 5), 0.2, 42);
        for i in 0..50 {
            let x: Vec<f32> = (0..6).map(|j| ((i * 7 + j * 3) % 11) as f32 / 11.0).collect();
            let o = net.predict(&x);
            assert!(o > 0.0 && o < 1.0);
        }
    }

    #[test]
    fn training_moves_output_toward_target() {
        let mut net = Network::random(Topology::new(2, 3), 0.5, 7);
        let x = [0.3, 0.8];
        let before = net.predict(&x);
        for _ in 0..200 {
            net.train(&x, 1.0);
        }
        let after = net.predict(&x);
        assert!(after > before, "output should rise toward 1: {before} -> {after}");
        assert!(after > 0.9);
    }

    #[test]
    fn learns_xor() {
        // XOR is the classic non-linearly-separable sanity check: it requires
        // the hidden layer to work.
        let data = [([0.0, 0.0], 0.0), ([0.0, 1.0], 1.0), ([1.0, 0.0], 1.0), ([1.0, 1.0], 0.0)];
        let mut net = Network::random(Topology::new(2, 4), 0.5, 3);
        for _ in 0..8000 {
            for (x, t) in &data {
                net.train(x, *t);
            }
        }
        for (x, t) in &data {
            let o = net.predict(x);
            assert_eq!(Network::classify(o), *t >= 0.5, "xor({x:?}) -> {o}");
        }
    }

    #[test]
    fn classify_threshold() {
        assert!(Network::classify(0.5));
        assert!(Network::classify(0.9));
        assert!(!Network::classify(0.49));
    }

    #[test]
    fn predict_batch_is_bit_identical_to_sequential() {
        // Every batch size around the 4-element blocking boundary, several
        // topologies around the 4-row tile boundary, both sigmoid modes.
        for (ni, nh) in [(1, 1), (3, 4), (4, 4), (10, 10), (7, 9), (12, 8), (5, 13)] {
            let topo = Topology::new(ni, nh);
            for mode in [SigmoidMode::Exact, SigmoidMode::Table] {
                let mut net = Network::random(topo, 0.2, (ni * 131 + nh) as u64);
                net.set_sigmoid(mode);
                for b in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
                    let xs: Vec<f32> =
                        (0..b * ni).map(|i| ((i * 37 + 5) % 23) as f32 / 23.0 - 0.3).collect();
                    let mut batched = Vec::new();
                    net.predict_batch(&xs, &mut batched);
                    let seq: Vec<f32> = xs.chunks_exact(ni).map(|x| net.predict(x)).collect();
                    assert_eq!(
                        batched.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        seq.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                        "{topo} {mode:?} B={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn classify_batch_applies_the_threshold_per_element() {
        let topo = Topology::new(4, 4);
        let mut net = Network::random(topo, 0.2, 17);
        let xs: Vec<f32> = (0..6 * 4).map(|i| (i % 9) as f32 / 9.0).collect();
        let (mut out, mut valid) = (Vec::new(), Vec::new());
        net.classify_batch(&xs, &mut out, &mut valid);
        assert_eq!(out.len(), 6);
        assert_eq!(valid.len(), 6);
        for (o, v) in out.iter().zip(&valid) {
            assert_eq!(Network::classify(*o), *v);
        }
    }

    #[test]
    fn predict_batch_handles_the_empty_batch() {
        let mut net = Network::random(Topology::new(3, 2), 0.2, 1);
        let mut out = Vec::new();
        net.predict_batch(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "batch input size mismatch")]
    fn predict_batch_rejects_ragged_input() {
        let mut net = Network::random(Topology::new(3, 2), 0.2, 0);
        let _ = net.predict_batch(&[0.0; 7], &mut Vec::new());
    }

    #[test]
    fn table_sigmoid_stays_close_to_exact() {
        let topo = Topology::new(4, 4);
        let mut a = Network::random(topo, 0.2, 9);
        let mut b = a.clone();
        b.set_sigmoid(SigmoidMode::Table);
        let x = [0.2, 0.4, 0.6, 0.8];
        assert!((a.predict(&x) - b.predict(&x)).abs() < 5e-3);
    }
}
