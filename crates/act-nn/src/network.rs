//! The one-hidden-layer neural network (ACT's partially configurable
//! topology `i × h × 1`, with `1 ≤ i, h ≤ M`).
//!
//! Learning is standard online back-propagation with a sigmoid activation,
//! exactly as §II-A describes: the output error is
//! `err = o·(1−o)·(t−o)`, weights are updated along the gradient scaled by
//! the learning rate, and the error is propagated to the hidden layer in
//! proportion to the link weights.

use crate::sigmoid::{sigmoid_deriv_from_output, SigmoidMode};
use act_rng::rngs::StdRng;
use act_rng::{Rng, SeedableRng};

/// A network shape: `inputs × hidden × 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Number of inputs (`i`).
    pub inputs: usize,
    /// Number of hidden neurons (`h`).
    pub hidden: usize,
}

impl Topology {
    /// Construct a topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(inputs: usize, hidden: usize) -> Self {
        assert!(inputs > 0 && hidden > 0, "topology dimensions must be positive");
        Topology { inputs, hidden }
    }

    /// Total number of link weights (including biases): the size of the flat
    /// weight vector stored per thread in the program binary.
    pub fn weight_count(&self) -> usize {
        self.hidden * (self.inputs + 1) + (self.hidden + 1)
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x1", self.inputs, self.hidden)
    }
}

/// Classification threshold: outputs at or above this are "valid".
pub const VALID_THRESHOLD: f32 = 0.5;

/// A one-hidden-layer MLP with a single output neuron.
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    /// Hidden weights, `hidden` rows of `inputs + 1` (last is bias).
    w_hidden: Vec<f32>,
    /// Output weights, `hidden + 1` (last is bias).
    w_out: Vec<f32>,
    /// Learning rate (the paper uses 0.2).
    lr: f32,
    sigmoid: SigmoidMode,
    /// Scratch buffer for hidden activations.
    hidden_act: Vec<f32>,
}

impl Network {
    /// A network with small random weights in `[-0.5, 0.5]`.
    pub fn random(topo: Topology, lr: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let w_hidden =
            (0..topo.hidden * (topo.inputs + 1)).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let w_out = (0..topo.hidden + 1).map(|_| rng.gen_range(-0.5..0.5)).collect();
        Network {
            topo,
            w_hidden,
            w_out,
            lr,
            sigmoid: SigmoidMode::Exact,
            hidden_act: vec![0.0; topo.hidden],
        }
    }

    /// Rebuild a network from a flat weight vector (see
    /// [`Network::weights_flat`]).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != topo.weight_count()`.
    pub fn from_flat(topo: Topology, weights: &[f32], lr: f32) -> Self {
        assert_eq!(weights.len(), topo.weight_count(), "weight vector size mismatch");
        let split = topo.hidden * (topo.inputs + 1);
        Network {
            topo,
            w_hidden: weights[..split].to_vec(),
            w_out: weights[split..].to_vec(),
            lr,
            sigmoid: SigmoidMode::Exact,
            hidden_act: vec![0.0; topo.hidden],
        }
    }

    /// Switch the activation implementation (exact vs hardware table).
    pub fn set_sigmoid(&mut self, mode: SigmoidMode) {
        self.sigmoid = mode;
    }

    /// The network's topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Flatten all weights into the order `ldwt`/`stwt` would stream them:
    /// hidden rows first, then the output row.
    pub fn weights_flat(&self) -> Vec<f32> {
        let mut v = self.w_hidden.clone();
        v.extend_from_slice(&self.w_out);
        v
    }

    /// Forward pass. Returns the output activation in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != topology().inputs`.
    pub fn predict(&mut self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.topo.inputs, "input size mismatch");
        let ni = self.topo.inputs;
        for h in 0..self.topo.hidden {
            let row = &self.w_hidden[h * (ni + 1)..(h + 1) * (ni + 1)];
            let mut sum = row[ni]; // bias
            for (w, xi) in row[..ni].iter().zip(x) {
                sum += w * xi;
            }
            self.hidden_act[h] = self.sigmoid.eval(sum);
        }
        let mut sum = self.w_out[self.topo.hidden]; // bias
        for (w, a) in self.w_out[..self.topo.hidden].iter().zip(&self.hidden_act) {
            sum += w * a;
        }
        self.sigmoid.eval(sum)
    }

    /// Whether an output classifies the sequence as valid.
    pub fn classify(output: f32) -> bool {
        output >= VALID_THRESHOLD
    }

    /// One step of online back-propagation toward target `t` (0 or 1).
    /// Returns the output *before* the update.
    ///
    /// The output-layer gradient uses the cross-entropy form `(t − o)`
    /// rather than the squared-error form `o·(1−o)·(t−o)` that §II-A
    /// writes: the extra `o·(1−o)` factor vanishes when the output
    /// saturates on the wrong side (the "flat spot"), which prevents the
    /// rare invalid examples from ever pulling a confidently-valid output
    /// down. Cross-entropy is the standard cure and what practical MLP
    /// libraries (the paper trains with OpenCV) effectively deliver.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != topology().inputs`.
    pub fn train(&mut self, x: &[f32], t: f32) -> f32 {
        let o = self.predict(x);
        let err_o = t - o;

        // Hidden-layer errors use the *pre-update* output weights.
        let nh = self.topo.hidden;
        let ni = self.topo.inputs;
        let mut err_h = vec![0.0f32; nh];
        for h in 0..nh {
            err_h[h] = sigmoid_deriv_from_output(self.hidden_act[h]) * self.w_out[h] * err_o;
        }

        // Update output weights.
        for h in 0..nh {
            self.w_out[h] += self.lr * err_o * self.hidden_act[h];
        }
        self.w_out[nh] += self.lr * err_o;

        // Update hidden weights.
        for h in 0..nh {
            let row = &mut self.w_hidden[h * (ni + 1)..(h + 1) * (ni + 1)];
            for (w, xi) in row[..ni].iter_mut().zip(x) {
                *w += self.lr * err_h[h] * xi;
            }
            row[ni] += self.lr * err_h[h];
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_count_matches_flat_round_trip() {
        let topo = Topology::new(4, 3);
        assert_eq!(topo.weight_count(), 3 * 5 + 4);
        let mut net = Network::random(topo, 0.2, 1);
        let flat = net.weights_flat();
        assert_eq!(flat.len(), topo.weight_count());
        let mut clone = Network::from_flat(topo, &flat, 0.2);
        let x = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(net.predict(&x), clone.predict(&x));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_flat_rejects_wrong_length() {
        let _ = Network::from_flat(Topology::new(2, 2), &[0.0; 5], 0.2);
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn predict_rejects_wrong_input_len() {
        let mut net = Network::random(Topology::new(3, 2), 0.2, 0);
        let _ = net.predict(&[0.0, 1.0]);
    }

    #[test]
    fn output_is_a_probability() {
        let mut net = Network::random(Topology::new(6, 5), 0.2, 42);
        for i in 0..50 {
            let x: Vec<f32> = (0..6).map(|j| ((i * 7 + j * 3) % 11) as f32 / 11.0).collect();
            let o = net.predict(&x);
            assert!(o > 0.0 && o < 1.0);
        }
    }

    #[test]
    fn training_moves_output_toward_target() {
        let mut net = Network::random(Topology::new(2, 3), 0.5, 7);
        let x = [0.3, 0.8];
        let before = net.predict(&x);
        for _ in 0..200 {
            net.train(&x, 1.0);
        }
        let after = net.predict(&x);
        assert!(after > before, "output should rise toward 1: {before} -> {after}");
        assert!(after > 0.9);
    }

    #[test]
    fn learns_xor() {
        // XOR is the classic non-linearly-separable sanity check: it requires
        // the hidden layer to work.
        let data = [([0.0, 0.0], 0.0), ([0.0, 1.0], 1.0), ([1.0, 0.0], 1.0), ([1.0, 1.0], 0.0)];
        let mut net = Network::random(Topology::new(2, 4), 0.5, 3);
        for _ in 0..8000 {
            for (x, t) in &data {
                net.train(x, *t);
            }
        }
        for (x, t) in &data {
            let o = net.predict(x);
            assert_eq!(Network::classify(o), *t >= 0.5, "xor({x:?}) -> {o}");
        }
    }

    #[test]
    fn classify_threshold() {
        assert!(Network::classify(0.5));
        assert!(Network::classify(0.9));
        assert!(!Network::classify(0.49));
    }

    #[test]
    fn table_sigmoid_stays_close_to_exact() {
        let topo = Topology::new(4, 4);
        let mut a = Network::random(topo, 0.2, 9);
        let mut b = a.clone();
        b.set_sigmoid(SigmoidMode::Table);
        let x = [0.2, 0.4, 0.6, 0.8];
        assert!((a.predict(&x) - b.predict(&x)).abs() < 5e-3);
    }
}
