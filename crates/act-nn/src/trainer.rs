//! Offline training: epoch-based back-propagation and the `M²` topology
//! search of §IV-A (`i × h × 1` with `1 ≤ i, h ≤ M`).
//!
//! This replaces the OpenCV MLP library the paper trains with (its reference 27): the caller
//! supplies labelled examples (positive = observed RAW dependence sequences,
//! negative = synthesized invalid ones), the trainer picks the topology with
//! the lowest held-out misprediction rate.

use crate::network::{Network, Topology};
use act_rng::rngs::StdRng;
use act_rng::seq::SliceRandom;
use act_rng::SeedableRng;

/// One labelled training example.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Encoded input vector.
    pub x: Vec<f32>,
    /// Target: 1.0 for a valid sequence, 0.0 for an invalid one.
    pub t: f32,
}

impl Example {
    /// A positive (valid) example.
    pub fn valid(x: Vec<f32>) -> Self {
        Example { x, t: 1.0 }
    }

    /// A negative (invalid) example.
    pub fn invalid(x: Vec<f32>) -> Self {
        Example { x, t: 0.0 }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Back-propagation learning rate (paper: 0.2).
    pub learning_rate: f32,
    /// Upper bound on training epochs.
    pub max_epochs: usize,
    /// Stop early once the epoch's misclassification rate is at or below
    /// this value.
    pub target_error: f64,
    /// Seed for weight initialization and example shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { learning_rate: 0.2, max_epochs: 60, target_error: 0.0, seed: 1 }
    }
}

/// Result of training a single network.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// The trained network.
    pub network: Network,
    /// Number of epochs actually run.
    pub epochs: usize,
    /// Misclassification rate over the training set after the final epoch.
    pub train_error: f64,
}

/// Classification quality over a labelled set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalStats {
    /// Examples evaluated.
    pub total: usize,
    /// Valid examples predicted invalid (false positives in the paper's
    /// terms: spurious logging).
    pub false_positives: usize,
    /// Invalid examples predicted valid (false negatives: missed bugs).
    pub false_negatives: usize,
}

impl EvalStats {
    /// Total mispredictions.
    pub fn mispredictions(&self) -> usize {
        self.false_positives + self.false_negatives
    }

    /// Misprediction rate in `[0, 1]`; 0 for an empty set.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.mispredictions() as f64 / self.total as f64
        }
    }
}

/// Train a network of shape `topo` on `examples`.
///
/// Examples are shuffled each epoch; training stops early when the epoch
/// misclassification rate reaches `cfg.target_error`.
pub fn train_network(topo: Topology, examples: &[Example], cfg: TrainConfig) -> TrainResult {
    // Start from a default-invalid prior: the output bias begins strongly
    // negative, so input regions no example ever visits stay classified
    // invalid. This is the property ACT's online testing depends on — a
    // communication never observed in a correct run must look suspicious —
    // and it mirrors the default weights given to untrained threads (§IV-C).
    let mut net = Network::random(topo, cfg.learning_rate, cfg.seed);
    let mut weights = net.weights_flat();
    *weights.last_mut().expect("nonempty") -= 3.0;
    net = Network::from_flat(topo, &weights, cfg.learning_rate);
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xeca7_55de);
    let mut epochs = 0;
    let mut train_error = 1.0;
    for _ in 0..cfg.max_epochs {
        epochs += 1;
        order.shuffle(&mut rng);
        let mut wrong = 0usize;
        for &i in &order {
            let ex = &examples[i];
            let o = net.train(&ex.x, ex.t);
            if Network::classify(o) != (ex.t >= 0.5) {
                wrong += 1;
            }
        }
        train_error = if examples.is_empty() { 0.0 } else { wrong as f64 / examples.len() as f64 };
        if train_error <= cfg.target_error {
            break;
        }
    }
    TrainResult { network: net, epochs, train_error }
}

/// Evaluate a network's classification quality on a labelled set.
pub fn evaluate(net: &mut Network, examples: &[Example]) -> EvalStats {
    let mut stats = EvalStats { total: examples.len(), ..Default::default() };
    for ex in examples {
        let predicted_valid = Network::classify(net.predict(&ex.x));
        let actually_valid = ex.t >= 0.5;
        match (actually_valid, predicted_valid) {
            (true, false) => stats.false_positives += 1,
            (false, true) => stats.false_negatives += 1,
            _ => {}
        }
    }
    stats
}

/// The search space for topology selection.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Candidate sequence lengths `N` (number of RAW dependences per input).
    /// The paper sweeps 1..=5.
    pub seq_lens: Vec<usize>,
    /// Candidate hidden-layer sizes. The paper sweeps 1..=10.
    pub hidden_sizes: Vec<usize>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace { seq_lens: (1..=5).collect(), hidden_sizes: (1..=10).collect() }
    }
}

/// Outcome of a topology search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The winning sequence length `N`.
    pub seq_len: usize,
    /// The winning topology.
    pub topology: Topology,
    /// The network trained at that topology.
    pub network: Network,
    /// Held-out misprediction rate of the winner.
    pub test_error: f64,
    /// Number of (seq_len, hidden) candidates evaluated.
    pub candidates: usize,
}

/// Search over sequence lengths and hidden sizes for the topology with the
/// lowest held-out misprediction rate (ties go to the smaller network).
///
/// `examples_for(n)` must return `(train, test)` example sets encoded for
/// sequence length `n`; all examples for a given `n` must share the same
/// input width. Lengths with no training data are skipped.
///
/// # Panics
///
/// Panics if every candidate sequence length has an empty training set.
pub fn topology_search<F>(space: &SearchSpace, cfg: TrainConfig, examples_for: F) -> SearchOutcome
where
    F: FnMut(usize) -> (Vec<Example>, Vec<Example>),
{
    topology_search_with_workers(space, cfg, 1, examples_for)
}

/// One `(seq_len, hidden)` cell of the search grid, borrowing its sequence
/// length's materialized example sets.
struct Candidate<'a> {
    seq_len: usize,
    topo: Topology,
    train: &'a [Example],
    test: &'a [Example],
}

/// [`topology_search`] with the candidate grid fanned across `workers`
/// threads (via [`act_fleet::parallel_map`]).
///
/// Each `(seq_len, hidden)` candidate trains independently from its own
/// seeded RNG streams, so training can run in any order; the winner is then
/// folded in the serial grid order with the exact comparison the serial
/// search uses. The outcome — topology, weights, error — is therefore
/// **byte-identical** at any worker count. `examples_for` is still called
/// serially (once per sequence length, in order), since it may carry
/// mutable state.
pub fn topology_search_with_workers<F>(
    space: &SearchSpace,
    cfg: TrainConfig,
    workers: usize,
    mut examples_for: F,
) -> SearchOutcome
where
    F: FnMut(usize) -> (Vec<Example>, Vec<Example>),
{
    // Materialize example sets per sequence length up front (serially).
    let mut sets: Vec<(usize, Vec<Example>, Vec<Example>)> = Vec::new();
    for &n in &space.seq_lens {
        let (train, test) = examples_for(n);
        if train.is_empty() {
            continue;
        }
        let inputs = train[0].x.len();
        debug_assert!(train.iter().chain(&test).all(|e| e.x.len() == inputs));
        sets.push((n, train, test));
    }
    // Expand the grid in serial iteration order: seq_lens outer, hidden inner.
    let grid: Vec<Candidate> = sets
        .iter()
        .flat_map(|(n, train, test)| {
            space.hidden_sizes.iter().map(move |&h| Candidate {
                seq_len: *n,
                topo: Topology::new(train[0].x.len(), h),
                train,
                test,
            })
        })
        .collect();
    let trained: Vec<(Network, f64)> = act_fleet::parallel_map(&grid, workers, |_, c| {
        let result = train_network(c.topo, c.train, cfg);
        let mut net = result.network;
        let err =
            if c.test.is_empty() { result.train_error } else { evaluate(&mut net, c.test).rate() };
        (net, err)
    });
    // Fold winners in grid order so the choice (including the equal-error
    // tie-break to the smaller network) matches the serial loop exactly.
    let mut best: Option<SearchOutcome> = None;
    for (c, (net, err)) in grid.iter().zip(trained) {
        let better = match &best {
            None => true,
            Some(b) => {
                err < b.test_error
                    || (err == b.test_error && c.topo.weight_count() < b.topology.weight_count())
            }
        };
        if better {
            best = Some(SearchOutcome {
                seq_len: c.seq_len,
                topology: c.topo,
                network: net,
                test_error: err,
                candidates: 0,
            });
        }
    }
    let mut out = best.expect("no training data for any sequence length");
    out.candidates = grid.len();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy separable problem: valid iff x[0] > x[1].
    fn toy_examples(n: usize, seed: u64) -> Vec<Example> {
        use act_rng::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let a: f32 = rng.gen_range(0.0..1.0);
                let b: f32 = rng.gen_range(0.0..1.0);
                Example { x: vec![a, b], t: if a > b { 1.0 } else { 0.0 } }
            })
            .collect()
    }

    #[test]
    fn trains_to_low_error_on_separable_data() {
        let train = toy_examples(300, 1);
        let test = toy_examples(100, 2);
        let cfg = TrainConfig { max_epochs: 200, ..Default::default() };
        let result = train_network(Topology::new(2, 4), &train, cfg);
        let mut net = result.network;
        let stats = evaluate(&mut net, &test);
        assert!(stats.rate() < 0.1, "test error {} too high", stats.rate());
    }

    #[test]
    fn early_stop_when_perfect() {
        // Trivial constant-valid data: should stop well before max_epochs.
        let train: Vec<Example> =
            (0..50).map(|i| Example::valid(vec![i as f32 / 50.0, 0.5])).collect();
        let cfg = TrainConfig { max_epochs: 500, ..Default::default() };
        let result = train_network(Topology::new(2, 2), &train, cfg);
        assert!(result.epochs < 500);
        assert_eq!(result.train_error, 0.0);
    }

    #[test]
    fn eval_stats_distinguish_fp_fn() {
        let mut net = Network::random(Topology::new(1, 1), 0.2, 1);
        // Train hard toward "always valid".
        for _ in 0..500 {
            net.train(&[0.5], 1.0);
        }
        let stats = evaluate(&mut net, &[Example::valid(vec![0.5]), Example::invalid(vec![0.5])]);
        assert_eq!(stats.false_positives, 0);
        assert_eq!(stats.false_negatives, 1);
        assert_eq!(stats.mispredictions(), 1);
        assert!((stats.rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn topology_search_picks_a_winner() {
        let space = SearchSpace { seq_lens: vec![1, 2], hidden_sizes: vec![1, 2, 3] };
        let cfg = TrainConfig { max_epochs: 40, ..Default::default() };
        let outcome = topology_search(&space, cfg, |n| {
            // Width-n encoding of the toy problem (pad with 0.5).
            let widen = |ex: Example| {
                let mut x = ex.x;
                x.resize(n + 1, 0.5);
                Example { x, t: ex.t }
            };
            (
                toy_examples(200, n as u64).into_iter().map(widen).collect(),
                toy_examples(80, 100 + n as u64).into_iter().map(widen).collect(),
            )
        });
        assert_eq!(outcome.candidates, 6);
        assert!(outcome.test_error < 0.2);
        assert!(outcome.seq_len == 1 || outcome.seq_len == 2);
    }

    #[test]
    fn parallel_search_is_byte_identical_to_serial() {
        let space = SearchSpace { seq_lens: vec![1, 2, 3], hidden_sizes: vec![1, 2, 4] };
        let cfg = TrainConfig { max_epochs: 25, ..Default::default() };
        let examples_for = |n: usize| {
            let widen = |ex: Example| {
                let mut x = ex.x;
                x.resize(n + 1, 0.5);
                Example { x, t: ex.t }
            };
            (
                toy_examples(150, n as u64).into_iter().map(widen).collect::<Vec<_>>(),
                toy_examples(60, 100 + n as u64).into_iter().map(widen).collect::<Vec<_>>(),
            )
        };
        let serial = topology_search(&space, cfg, examples_for);
        for workers in [1, 2, 4, 8] {
            let par = topology_search_with_workers(&space, cfg, workers, examples_for);
            assert_eq!(par.seq_len, serial.seq_len, "workers={workers}");
            assert_eq!(par.topology, serial.topology, "workers={workers}");
            assert_eq!(par.candidates, serial.candidates, "workers={workers}");
            assert_eq!(par.test_error.to_bits(), serial.test_error.to_bits(), "workers={workers}");
            let (pw, sw) = (par.network.weights_flat(), serial.network.weights_flat());
            let bits = |w: Vec<f32>| w.into_iter().map(f32::to_bits).collect::<Vec<_>>();
            assert_eq!(bits(pw), bits(sw), "weights must match bitwise at workers={workers}");
        }
    }

    #[test]
    fn topology_search_skips_empty_lengths() {
        let space = SearchSpace { seq_lens: vec![1, 2], hidden_sizes: vec![2] };
        let cfg = TrainConfig::default();
        let outcome = topology_search(&space, cfg, |n| {
            if n == 1 {
                (vec![], vec![])
            } else {
                (toy_examples(100, 5), toy_examples(50, 6))
            }
        });
        assert_eq!(outcome.seq_len, 2);
    }

    #[test]
    #[should_panic(expected = "no training data")]
    fn topology_search_requires_some_data() {
        let space = SearchSpace { seq_lens: vec![1], hidden_sizes: vec![1] };
        let _ = topology_search(&space, TrainConfig::default(), |_| (vec![], vec![]));
    }
}
