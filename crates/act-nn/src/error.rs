//! Typed configuration errors.
//!
//! [`ConfigError`] names the offending field so a CLI or daemon can tell
//! the operator exactly which knob to fix, instead of surfacing a panic
//! backtrace. It is defined here (the lowest crate that validates a
//! config) and re-exported by `act-core` next to `ActError`.

use std::fmt;

/// A configuration field failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The configuration field that failed.
    pub field: &'static str,
    /// The constraint it violated.
    pub message: String,
}

impl ConfigError {
    /// Build an error for `field`.
    pub fn new(field: &'static str, message: impl Into<String>) -> ConfigError {
        ConfigError { field, message: message.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: `{}` {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let err = ConfigError::new("fifo_capacity", "must be at least 1");
        assert_eq!(err.to_string(), "invalid config: `fifo_capacity` must be at least 1");
    }
}
