//! # act-nn — neural hardware substrate for ACT
//!
//! Everything neural in the paper, built from scratch:
//!
//! * [`network`] — the one-hidden-layer MLP (`i × h × 1`) with sigmoid
//!   activation and online back-propagation (§II-A).
//! * [`sigmoid`] — exact activation plus the hardware lookup table.
//! * [`trainer`] — epoch training and the `M²` topology search that replaces
//!   the paper's OpenCV MLP library (§III-B).
//! * [`pipeline`] — the cycle model of ACT's three-stage partially
//!   configurable pipeline, with the multiply-add-unit latency knob and the
//!   input FIFO whose back-pressure stalls load retirement (§IV-A).
//! * [`npu`] — the fully configurable time-multiplexed alternative design
//!   used to justify the pipeline (§IV-A / §VI).
//!
//! The crate is deliberately independent of the simulator: it consumes plain
//! `f32` vectors. Turning RAW dependence sequences into input vectors is the
//! job of `act-core`'s encoder, keeping this substrate reusable.
//!
//! ## Example
//!
//! ```
//! use act_nn::network::{Network, Topology};
//!
//! let mut net = Network::random(Topology::new(4, 3), 0.2, 42);
//! for _ in 0..100 {
//!     net.train(&[0.1, 0.2, 0.3, 0.4], 1.0);
//! }
//! let o = net.predict(&[0.1, 0.2, 0.3, 0.4]);
//! assert!(Network::classify(o));
//! ```

pub mod error;
pub mod network;
pub mod npu;
pub mod pipeline;
pub mod sigmoid;
pub mod trainer;

pub use error::ConfigError;
pub use network::{Network, Topology};
pub use pipeline::{NnPipeline, PipelineConfig};
pub use trainer::{Example, TrainConfig};
