//! Sigmoid activation: exact form and the hardware lookup table.
//!
//! The paper's neuron contains a *sigmoid table* rather than a transcendental
//! unit; [`SigmoidTable`] models it. The offline trainer may use the exact
//! function; the hardware-faithful path uses the table. A unit test bounds
//! the divergence between the two so training/inference mismatch cannot
//! silently skew predictions.

/// Exact logistic sigmoid.
///
/// The exponential is an inlinable branch-free polynomial (Cephes-style
/// `2^f` minimax, relative error ≲ 1e-7 — two orders tighter than the
/// hardware table's 1e-3 budget) rather than libm's `expf`. libm is an
/// opaque call the optimizer can neither inline nor schedule around, and
/// on the deployment hot path the call boundary alone costs more than the
/// arithmetic: one prediction evaluates the sigmoid once per hidden
/// neuron plus once for the output.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + exp_fast(-x))
}

/// Branch-free `e^x` over the sigmoid's useful range.
///
/// The input is clamped to ±30 (`sigmoid(±30)` is within 1e-13 of full
/// saturation), which also keeps the constructed exponent field in
/// `2^±44` — no overflow, underflow, or denormals to special-case. The
/// split `e^x = 2^k · 2^f` rounds `k` with the shift-into-mantissa trick
/// so the whole function is straight-line arithmetic.
#[inline]
fn exp_fast(x: f32) -> f32 {
    // 1.5 · 2^23: adding it forces the integer part of a small f32 into
    // the low mantissa bits, so the add-then-subtract rounds to nearest.
    const MAGIC: f32 = 12_582_912.0;
    let t = x.clamp(-30.0, 30.0) * std::f32::consts::LOG2_E;
    let kf = t + MAGIC; // bits: MAGIC's pattern plus k in the mantissa
    let k = kf - MAGIC;
    let f = t - k; // in [-0.5, 0.5]
                   // Minimax polynomial for 2^f on [-0.5, 0.5] (Cephes exp2f
                   // coefficients), evaluated in Estrin form: the three sub-terms are
                   // independent, which roughly halves the dependency chain vs Horner —
                   // this is latency-bound code with no FMA on the baseline target.
    let f2 = f * f;
    let f4 = f2 * f2;
    let q0 = 6.931_472e-1 * f + 1.0;
    let q1 = 5.550_332_5e-2 * f + 2.402_264_7e-1;
    let q2 = 1.339_887_4e-3 * f + 9.618_437_4e-3;
    let p = q0 + f2 * q1 + f4 * (q2 + f2 * 1.535_336_2e-4);
    // 2^k assembled directly in the exponent field. `k` is recovered from
    // `kf`'s low mantissa bits with integer arithmetic: `to_bits(kf) =
    // to_bits(MAGIC) + k` exactly while `MAGIC + k` stays inside MAGIC's
    // binade (|k| ≤ 44 here). A float→int *cast* instead would defeat
    // vectorization of the whole function: Rust's saturating `as i32`
    // lowers to a scalar convert plus NaN/range fix-ups per lane.
    let k_bits = kf.to_bits().wrapping_sub(MAGIC.to_bits()); // k as two's-complement u32
    p * f32::from_bits(k_bits.wrapping_add(127) << 23)
}

/// Apply [`sigmoid`] to every element of a slice, in place.
///
/// Deliberately `#[inline(never)]`: as a standalone function the loop
/// auto-vectorizes into clean 4-wide code, while the same loop inlined
/// among a caller's surrounding scalar work gets unrolled *scalar* instead
/// (measured ~2× slower for a 10-element hidden layer). One outlined call
/// per prediction amortizes to nothing; a scalarized activation map does
/// not.
#[inline(never)]
pub fn sigmoid_map(xs: &mut [f32]) {
    for x in xs {
        *x = sigmoid(*x);
    }
}

/// Derivative of the sigmoid expressed in terms of its output `o`.
pub fn sigmoid_deriv_from_output(o: f32) -> f32 {
    o * (1.0 - o)
}

/// A fixed-size lookup table over `[-range, range]`, linearly interpolated,
/// saturating outside the range — the hardware sigmoid unit.
#[derive(Debug, Clone)]
pub struct SigmoidTable {
    entries: Vec<f32>,
    range: f32,
    /// Precomputed `(entries - 1) / (2 * range)`: one multiply per lookup
    /// instead of a divide (the hardware would wire this as a shift).
    inv_step: f32,
}

impl SigmoidTable {
    /// Build a table with `entries` samples over `[-range, range]`.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2` or `range <= 0`.
    pub fn new(entries: usize, range: f32) -> Self {
        assert!(entries >= 2 && range > 0.0);
        let table: Vec<f32> = (0..entries)
            .map(|i| {
                let x = -range + 2.0 * range * (i as f32) / (entries - 1) as f32;
                sigmoid(x)
            })
            .collect();
        let inv_step = (entries - 1) as f32 / (2.0 * range);
        SigmoidTable { entries: table, range, inv_step }
    }

    /// The default hardware table: 1024 entries over `[-8, 8]`.
    pub fn hardware_default() -> &'static SigmoidTable {
        use std::sync::OnceLock;
        static TABLE: OnceLock<SigmoidTable> = OnceLock::new();
        TABLE.get_or_init(|| SigmoidTable::new(1024, 8.0))
    }

    /// Look up `sigmoid(x)` with linear interpolation, saturating outside
    /// the table range.
    ///
    /// Branch-free: saturation is the `clamp` on the scaled position (it
    /// compiles to min/max, so out-of-range inputs cost the same as
    /// in-range ones — no mispredicts on the hot path). At either edge the
    /// interpolation weight is exactly `0.0` or `1.0`, so the result
    /// equals the edge entry, same as an explicit early return. For `x`
    /// one ulp below `range`, `(x + range) * inv_step` can still round UP
    /// to exactly `entries - 1`; the `min` keeps `i + 1` in bounds (and
    /// `frac` then interpolates within the final cell).
    #[inline]
    pub fn eval(&self, x: f32) -> f32 {
        let last = self.entries.len() - 1;
        let pos = ((x + self.range) * self.inv_step).clamp(0.0, last as f32);
        // `pos` is non-negative here, so the cast truncation IS floor.
        let i = (pos as usize).min(last - 1);
        let frac = pos - i as f32;
        self.entries[i] * (1.0 - frac) + self.entries[i + 1] * frac
    }
}

/// Which sigmoid implementation a network uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SigmoidMode {
    /// Exact logistic function (software training).
    #[default]
    Exact,
    /// The 1024-entry hardware lookup table.
    Table,
}

impl SigmoidMode {
    /// Evaluate the sigmoid under this mode.
    pub fn eval(self, x: f32) -> f32 {
        match self {
            SigmoidMode::Exact => sigmoid(x),
            SigmoidMode::Table => SigmoidTable::hardware_default().eval(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sigmoid_shape() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Monotone.
        assert!(sigmoid(1.0) > sigmoid(0.5));
    }

    #[test]
    fn derivative_peaks_at_half() {
        assert!((sigmoid_deriv_from_output(0.5) - 0.25).abs() < 1e-6);
        assert!(sigmoid_deriv_from_output(0.9) < 0.25);
    }

    #[test]
    fn table_matches_exact_within_tolerance() {
        let t = SigmoidTable::hardware_default();
        let mut worst: f32 = 0.0;
        let mut x = -12.0_f32;
        while x <= 12.0 {
            worst = worst.max((t.eval(x) - sigmoid(x)).abs());
            x += 0.01;
        }
        assert!(worst < 1e-3, "table error {worst} too large");
    }

    #[test]
    fn table_saturates() {
        let t = SigmoidTable::new(64, 4.0);
        assert_eq!(t.eval(-100.0), t.eval(-4.0));
        assert_eq!(t.eval(100.0), t.eval(4.0));
    }

    #[test]
    fn boundary_just_below_range_stays_in_bounds() {
        // At `x = range - ε` the index math `(x + range) * inv_step` can
        // round up to the last entry; the lookup must clamp to the final
        // cell, not read out of bounds, and still agree with saturation.
        for &(entries, range) in &[(64usize, 4.0f32), (1024, 8.0), (2, 1.0), (3, 0.5)] {
            let t = SigmoidTable::new(entries, range);
            let eps = f32::EPSILON * range;
            let x = range - eps;
            assert!(x < range, "ε must actually move x below range");
            let v = t.eval(x);
            let saturated = t.eval(range);
            assert!((v - saturated).abs() < 1e-3, "eval({x}) = {v} vs saturated {saturated}");
            // And from the left edge too.
            let v_lo = t.eval(-range + eps);
            assert!((v_lo - t.eval(-range)).abs() < 1e-3);
        }
    }

    #[test]
    fn mode_dispatch() {
        assert!((SigmoidMode::Exact.eval(0.0) - 0.5).abs() < 1e-6);
        assert!((SigmoidMode::Table.eval(0.0) - 0.5).abs() < 1e-3);
    }
}
