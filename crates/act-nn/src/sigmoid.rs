//! Sigmoid activation: exact form and the hardware lookup table.
//!
//! The paper's neuron contains a *sigmoid table* rather than a transcendental
//! unit; [`SigmoidTable`] models it. The offline trainer may use the exact
//! function; the hardware-faithful path uses the table. A unit test bounds
//! the divergence between the two so training/inference mismatch cannot
//! silently skew predictions.

/// Exact logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Derivative of the sigmoid expressed in terms of its output `o`.
pub fn sigmoid_deriv_from_output(o: f32) -> f32 {
    o * (1.0 - o)
}

/// A fixed-size lookup table over `[-range, range]`, linearly interpolated,
/// saturating outside the range — the hardware sigmoid unit.
#[derive(Debug, Clone)]
pub struct SigmoidTable {
    entries: Vec<f32>,
    range: f32,
}

impl SigmoidTable {
    /// Build a table with `entries` samples over `[-range, range]`.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2` or `range <= 0`.
    pub fn new(entries: usize, range: f32) -> Self {
        assert!(entries >= 2 && range > 0.0);
        let table = (0..entries)
            .map(|i| {
                let x = -range + 2.0 * range * (i as f32) / (entries - 1) as f32;
                sigmoid(x)
            })
            .collect();
        SigmoidTable { entries: table, range }
    }

    /// The default hardware table: 1024 entries over `[-8, 8]`.
    pub fn hardware_default() -> &'static SigmoidTable {
        use std::sync::OnceLock;
        static TABLE: OnceLock<SigmoidTable> = OnceLock::new();
        TABLE.get_or_init(|| SigmoidTable::new(1024, 8.0))
    }

    /// Look up `sigmoid(x)` with linear interpolation, saturating outside
    /// the table range.
    pub fn eval(&self, x: f32) -> f32 {
        if x <= -self.range {
            return self.entries[0];
        }
        if x >= self.range {
            return *self.entries.last().expect("nonempty");
        }
        let pos = (x + self.range) / (2.0 * self.range) * (self.entries.len() - 1) as f32;
        let i = pos.floor() as usize;
        let frac = pos - i as f32;
        if i + 1 >= self.entries.len() {
            self.entries[i]
        } else {
            self.entries[i] * (1.0 - frac) + self.entries[i + 1] * frac
        }
    }
}

/// Which sigmoid implementation a network uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SigmoidMode {
    /// Exact logistic function (software training).
    #[default]
    Exact,
    /// The 1024-entry hardware lookup table.
    Table,
}

impl SigmoidMode {
    /// Evaluate the sigmoid under this mode.
    pub fn eval(self, x: f32) -> f32 {
        match self {
            SigmoidMode::Exact => sigmoid(x),
            SigmoidMode::Table => SigmoidTable::hardware_default().eval(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sigmoid_shape() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Monotone.
        assert!(sigmoid(1.0) > sigmoid(0.5));
    }

    #[test]
    fn derivative_peaks_at_half() {
        assert!((sigmoid_deriv_from_output(0.5) - 0.25).abs() < 1e-6);
        assert!(sigmoid_deriv_from_output(0.9) < 0.25);
    }

    #[test]
    fn table_matches_exact_within_tolerance() {
        let t = SigmoidTable::hardware_default();
        let mut worst: f32 = 0.0;
        let mut x = -12.0_f32;
        while x <= 12.0 {
            worst = worst.max((t.eval(x) - sigmoid(x)).abs());
            x += 0.01;
        }
        assert!(worst < 1e-3, "table error {worst} too large");
    }

    #[test]
    fn table_saturates() {
        let t = SigmoidTable::new(64, 4.0);
        assert_eq!(t.eval(-100.0), t.eval(-4.0));
        assert_eq!(t.eval(100.0), t.eval(4.0));
    }

    #[test]
    fn mode_dispatch() {
        assert!((SigmoidMode::Exact.eval(0.0) - 0.5).abs() < 1e-6);
        assert!((SigmoidMode::Table.eval(0.0) - 0.5).abs() < 1e-3);
    }
}
