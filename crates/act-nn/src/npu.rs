//! The design alternative ACT compares against (§IV-A, Esmaeilzadeh et
//! al.-style NPU, reference 6 of the paper): a *fully configurable* neural accelerator that
//! time-multiplexes an arbitrary topology onto a fixed pool of processing
//! engines.
//!
//! Flexibility costs two things relative to ACT's pipeline:
//!
//! 1. **Scheduling overhead** — each layer requires configuration/dispatch
//!    cycles to route inputs and weights to the engines.
//! 2. **No input pipelining** — an input must finish the whole network
//!    before the next can start, so throughput equals `1 / latency` instead
//!    of `1 / T`.
//!
//! The `nn_design` experiment binary regenerates the paper's design-choice
//! comparison using this model.

use crate::network::Topology;

/// Parameters of the time-multiplexed NPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NpuConfig {
    /// Number of processing engines (neurons computed concurrently).
    pub engines: usize,
    /// Latency of one multiply-add, in cycles.
    pub t_mul_add: u64,
    /// Accumulator + activation tail per neuron, in cycles.
    pub t_rest: u64,
    /// Per-layer scheduling/configuration overhead, in cycles.
    pub schedule_overhead: u64,
}

impl Default for NpuConfig {
    fn default() -> Self {
        // Eight engines as in the NPU paper; each engine has one
        // multiply-add unit; scheduling costs a few cycles per layer.
        NpuConfig { engines: 8, t_mul_add: 1, t_rest: 2, schedule_overhead: 4 }
    }
}

impl NpuConfig {
    /// Cycles for one engine to evaluate a neuron with `inputs` inputs.
    /// Unlike ACT's fixed-`M` loop, the NPU iterates only over the actual
    /// inputs (flexibility has that one advantage).
    pub fn neuron_cycles(&self, inputs: usize) -> u64 {
        inputs as u64 * self.t_mul_add + self.t_rest
    }

    /// End-to-end latency of one prediction for `topo`.
    pub fn prediction_latency(&self, topo: Topology) -> u64 {
        let hidden_rounds = topo.hidden.div_ceil(self.engines) as u64;
        let hidden = self.schedule_overhead + hidden_rounds * self.neuron_cycles(topo.inputs);
        let output = self.schedule_overhead + self.neuron_cycles(topo.hidden);
        hidden + output
    }

    /// Cycles between inputs when the NPU is saturated (no pipelining).
    pub fn service_interval(&self, topo: Topology) -> u64 {
        self.prediction_latency(topo)
    }

    /// Total cycles to process `n` back-to-back inputs.
    pub fn batch_cycles(&self, topo: Topology, n: u64) -> u64 {
        n * self.service_interval(topo)
    }
}

/// Total cycles for ACT's pipelined design to process `n` back-to-back
/// inputs in testing mode: fill latency plus one service interval per input.
pub fn pipeline_batch_cycles(cfg: &crate::pipeline::PipelineConfig, n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    cfg.prediction_latency() + (n - 1) * cfg.service_interval(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;

    #[test]
    fn latency_scales_with_topology() {
        let npu = NpuConfig::default();
        let small = npu.prediction_latency(Topology::new(2, 2));
        let large = npu.prediction_latency(Topology::new(10, 10));
        assert!(large > small);
    }

    #[test]
    fn engine_rounds_matter() {
        let npu = NpuConfig { engines: 2, ..Default::default() };
        // 10 hidden neurons on 2 engines = 5 rounds.
        let t = npu.prediction_latency(Topology::new(4, 10));
        let expected = 4 + 5 * (4 + 2) + 4 + (10 + 2);
        assert_eq!(t, expected);
    }

    #[test]
    fn pipelined_design_wins_on_throughput_at_act_scale() {
        // For ACT's M=10-class topologies and a stream of inputs, the
        // pipelined partially-configurable design must beat the
        // time-multiplexed NPU — the paper's design-choice argument.
        let topo = Topology::new(10, 10);
        let pipe = PipelineConfig::default();
        let npu = NpuConfig::default();
        let n = 1000;
        let pipe_cycles = pipeline_batch_cycles(&pipe, n);
        let npu_cycles = npu.batch_cycles(topo, n);
        assert!(pipe_cycles < npu_cycles, "pipeline {pipe_cycles} should beat NPU {npu_cycles}");
    }

    #[test]
    fn batch_cycles_zero_and_one() {
        let pipe = PipelineConfig::default();
        assert_eq!(pipeline_batch_cycles(&pipe, 0), 0);
        assert_eq!(pipeline_batch_cycles(&pipe, 1), pipe.prediction_latency());
        let npu = NpuConfig::default();
        let topo = Topology::new(4, 4);
        assert_eq!(npu.batch_cycles(topo, 0), 0);
        assert_eq!(npu.batch_cycles(topo, 1), npu.prediction_latency(topo));
    }
}
