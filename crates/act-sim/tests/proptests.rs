//! Property-based tests for the simulator substrate.

// Property suites are opt-in: run with `--features slow-tests` (they use
// the in-tree proptest shim, so they work offline too).
#![cfg(feature = "slow-tests")]

use act_sim::asm::Asm;
use act_sim::config::{CacheConfig, MachineConfig, MetaGranularity};
use act_sim::events::LastWriter;
use act_sim::isa::{AluOp, Reg};
use act_sim::machine::Machine;
use act_sim::mem::Memory;
use act_sim::memsys::MemorySystem;
use act_sim::outcome::RunOutcome;
use proptest::prelude::*;

// The ALU agrees with native wrapping arithmetic (sans div-by-zero).
proptest! {
    #[test]
    fn alu_matches_reference(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(AluOp::Add.apply(a, b), Some(a.wrapping_add(b)));
        prop_assert_eq!(AluOp::Sub.apply(a, b), Some(a.wrapping_sub(b)));
        prop_assert_eq!(AluOp::Mul.apply(a, b), Some(a.wrapping_mul(b)));
        prop_assert_eq!(AluOp::And.apply(a, b), Some(a & b));
        prop_assert_eq!(AluOp::Xor.apply(a, b), Some(a ^ b));
        prop_assert_eq!(AluOp::Lt.apply(a, b), Some((a < b) as i64));
        prop_assert_eq!(AluOp::Min.apply(a, b), Some(a.min(b)));
        if b != 0 {
            prop_assert_eq!(AluOp::Div.apply(a, b), Some(a.wrapping_div(b)));
            prop_assert_eq!(AluOp::Rem.apply(a, b), Some(a.wrapping_rem(b)));
        } else {
            prop_assert_eq!(AluOp::Div.apply(a, b), None);
        }
    }
}

// Memory is a map: last write wins, reads do not disturb.
proptest! {
    #[test]
    fn memory_last_write_wins(ops in prop::collection::vec((0u64..64, any::<i64>()), 1..60)) {
        let mut mem = Memory::new();
        let mut model = std::collections::HashMap::new();
        for (slot, v) in &ops {
            let addr = 0x2000 + slot * 8;
            mem.write(addr, *v);
            model.insert(addr, *v);
        }
        for (addr, v) in &model {
            prop_assert_eq!(mem.read(*addr), *v);
        }
    }
}

// A straight-line register program computes the same value as a direct
// Rust evaluation of the same operation list.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn straight_line_matches_interpreter(
        seed in any::<i64>(),
        ops in prop::collection::vec((0u8..4, -50i64..50), 1..40),
    ) {
        let mut a = Asm::new();
        a.func("main");
        a.imm(Reg(1), seed % 1000);
        let mut model = seed % 1000;
        for (op, imm) in &ops {
            let (alu, m): (AluOp, Box<dyn Fn(i64) -> i64>) = match op {
                0 => (AluOp::Add, Box::new(move |x: i64| x.wrapping_add(*imm))),
                1 => (AluOp::Sub, Box::new(move |x: i64| x.wrapping_sub(*imm))),
                2 => (AluOp::Mul, Box::new(move |x: i64| x.wrapping_mul(*imm))),
                _ => (AluOp::Xor, Box::new(move |x: i64| x ^ *imm)),
            };
            a.alui(alu, Reg(1), Reg(1), *imm);
            model = m(model);
        }
        a.out(Reg(1));
        a.halt();
        let p = a.finish().unwrap();
        let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let out = Machine::new(&p, cfg).run();
        prop_assert_eq!(out, RunOutcome::Completed { output: vec![model] });
    }
}

// Store-then-load through the memory system always reports the storing
// instruction as the last writer at word granularity (same core, no
// intervening eviction pressure).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn memsys_word_metadata_tracks_last_store(
        writes in prop::collection::vec((0u64..32, 0u32..1000), 1..40)
    ) {
        let cfg = MachineConfig {
            cores: 2,
            l1: CacheConfig { size_bytes: 4096, ways: 2, latency: 2 },
            l2: CacheConfig { size_bytes: 64 * 1024, ways: 8, latency: 10 },
            granularity: MetaGranularity::Word,
            ..Default::default()
        };
        let mut ms = MemorySystem::new(&cfg);
        let mut model = std::collections::HashMap::new();
        let mut now = 0;
        for (slot, pc) in &writes {
            let addr = 0x2000 + slot * 8;
            ms.store(0, addr, now, LastWriter { pc: *pc, tid: 0 });
            model.insert(addr, *pc);
            now += 50;
        }
        for (addr, pc) in &model {
            let r = ms.load(0, *addr, now);
            prop_assert_eq!(r.last_writer, Some(LastWriter { pc: *pc, tid: 0 }));
            now += 50;
        }
    }
}

// Machine runs are deterministic for any seed.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn machine_is_deterministic(seed in any::<u64>()) {
        let mut a = Asm::new();
        let buf = a.static_zeroed(4);
        a.func("main");
        a.imm(Reg(1), buf as i64);
        a.imm(Reg(2), 0);
        let top = a.label_here();
        a.store(Reg(2), Reg(1), 0);
        a.load(Reg(3), Reg(1), 0);
        a.addi(Reg(2), Reg(2), 1);
        a.alui(AluOp::Lt, Reg(4), Reg(2), 20);
        a.bnz(Reg(4), top);
        a.out(Reg(3));
        a.halt();
        let p = a.finish().unwrap();
        let run = || {
            let mut m = Machine::new(&p, MachineConfig::with_seed(seed));
            let o = m.run();
            (o, m.stats().total_cycles)
        };
        prop_assert_eq!(run(), run());
    }
}
