//! Observable events produced by the machine: retired memory accesses,
//! branch outcomes, RAW dependences, and thread lifecycle.
//!
//! These are consumed by trace collectors (the PIN-tool substitute), by the
//! ACT module (through [`crate::attach::CoreAttachment`]), and by the PBI
//! baseline (cache events + branch outcomes).

use crate::isa::{Addr, Pc};

/// A thread identifier, assigned deterministically in spawn order.
///
/// The paper modifies the thread library so ids depend only on the parent
/// and spawn order; since this simulator spawns threads from a single
/// deterministic instruction stream, a global spawn counter gives the same
/// stability guarantee.
pub type ThreadId = u32;

/// Identity of the store that last wrote a word (or line), as tracked in
/// cache-line metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LastWriter {
    /// Instruction address of the store.
    pub pc: Pc,
    /// Thread that executed the store.
    pub tid: ThreadId,
}

/// A Read-After-Write dependence `S -> L`: the load at `load_pc` read a word
/// last written by the store at `store_pc`.
///
/// A dependence belongs to the processor/thread that executes the *load*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RawDep {
    /// Instruction address of the writing store.
    pub store_pc: Pc,
    /// Instruction address of the reading load.
    pub load_pc: Pc,
    /// Whether the store was executed by a different thread than the load.
    pub inter_thread: bool,
}

impl std::fmt::Display for RawDep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let arrow = if self.inter_thread { "=>" } else { "->" };
        write!(f, "{}{arrow}{}", self.store_pc, self.load_pc)
    }
}

/// How the memory hierarchy serviced an access. These are exactly the
/// per-instruction "cache events" the PBI baseline samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CacheEvent {
    /// Hit in the private L1.
    L1Hit,
    /// L1 miss, hit in the private L2.
    L2Hit,
    /// Miss serviced by a cache-to-cache transfer of a dirty line from
    /// another core (the line was in another cache's Modified state).
    CacheToCache,
    /// Miss serviced from main memory.
    Memory,
}

impl CacheEvent {
    /// All variants, for building predicate tables.
    pub const ALL: [CacheEvent; 4] =
        [CacheEvent::L1Hit, CacheEvent::L2Hit, CacheEvent::CacheToCache, CacheEvent::Memory];
}

/// A retired load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadEvent {
    /// Cycle at which the load was ready to retire.
    pub cycle: u64,
    /// Core that executed the load.
    pub core: usize,
    /// Thread that executed the load.
    pub tid: ThreadId,
    /// Instruction address of the load.
    pub pc: Pc,
    /// Byte address read.
    pub addr: Addr,
    /// How the hierarchy serviced it.
    pub cache_event: CacheEvent,
    /// The RAW dependence formed from cache-line metadata, if the last-writer
    /// information was available (it is lost on eviction and on clean
    /// transfers, per the paper's §V relaxations).
    pub dep: Option<RawDep>,
    /// Whether this access went through the stack pointer/frame pointer and
    /// is therefore filtered from communication tracking (paper §V).
    pub stack_access: bool,
}

/// A retired store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEvent {
    /// Cycle at which the store dispatched.
    pub cycle: u64,
    /// Core that executed the store.
    pub core: usize,
    /// Thread that executed the store.
    pub tid: ThreadId,
    /// Instruction address of the store.
    pub pc: Pc,
    /// Byte address written.
    pub addr: Addr,
    /// Whether this access went through the stack pointer/frame pointer.
    pub stack_access: bool,
}

/// A resolved conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEvent {
    /// Cycle at which the branch dispatched.
    pub cycle: u64,
    /// Core that executed the branch.
    pub core: usize,
    /// Thread that executed the branch.
    pub tid: ThreadId,
    /// Instruction address of the branch.
    pub pc: Pc,
    /// Whether the branch was taken.
    pub taken: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_dep_display_distinguishes_inter_thread() {
        let intra = RawDep { store_pc: 3, load_pc: 9, inter_thread: false };
        let inter = RawDep { store_pc: 3, load_pc: 9, inter_thread: true };
        assert_eq!(intra.to_string(), "3->9");
        assert_eq!(inter.to_string(), "3=>9");
        assert_ne!(intra, inter);
    }

    #[test]
    fn cache_event_all_is_exhaustive_and_distinct() {
        let mut set = std::collections::HashSet::new();
        for e in CacheEvent::ALL {
            set.insert(e);
        }
        assert_eq!(set.len(), 4);
    }
}
