//! Timing and coherence model: private L1/L2 caches per core, a snoopy MESI
//! bus at the L2 level, main memory, and last-writer metadata in cache lines.
//!
//! Architectural *values* live in [`crate::mem::Memory`]; this module models
//! *when* an access completes, *how* it was serviced (for PBI's cache-event
//! predicates), and whether last-writer metadata was available (for RAW
//! dependence formation).
//!
//! The model follows the paper's three metadata relaxations (§V):
//!
//! 1. metadata may be kept at line rather than word granularity
//!    ([`MetaGranularity::Line`]);
//! 2. metadata is *not* written back to memory on eviction — it is simply
//!    lost, so later loads of that line form no dependence;
//! 3. metadata is piggybacked on coherence messages only for cache-to-cache
//!    transfers of dirty lines.
//!
//! Structural simplifications (documented, timing-neutral for the paper's
//! experiments): the L1 is a tag array whose lines mirror the inclusive L2
//! (metadata and MESI state are kept once, in the L2, which is the coherence
//! point per Table III), and bus transactions are atomic — a transaction
//! holds the bus for the transfer duration and completes at a computed cycle
//! rather than via a message-level state machine.

use crate::config::{MachineConfig, MetaGranularity};
use crate::events::{CacheEvent, LastWriter};
use crate::isa::Addr;
use crate::stats::MemStats;

/// MESI coherence states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mesi {
    Modified,
    Exclusive,
    Shared,
    Invalid,
}

/// An L2 line: MESI state plus last-writer metadata.
#[derive(Debug, Clone)]
struct L2Line {
    tag: u64,
    state: Mesi,
    /// One entry per word ([`MetaGranularity::Word`]) or a single entry
    /// ([`MetaGranularity::Line`]).
    meta: Vec<Option<LastWriter>>,
    lru: u64,
}

/// An L1 line: tag only (state and metadata live in the inclusive L2).
#[derive(Debug, Clone, Copy)]
struct L1Line {
    tag: u64,
    valid: bool,
    lru: u64,
}

#[derive(Debug)]
struct L1Array {
    sets: Vec<Vec<L1Line>>,
    set_mask: u64,
}

impl L1Array {
    fn new(sets: usize, ways: usize) -> Self {
        L1Array {
            sets: vec![vec![L1Line { tag: 0, valid: false, lru: 0 }; ways]; sets],
            set_mask: sets as u64 - 1,
        }
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr & self.set_mask) as usize
    }

    fn hit(&mut self, line_addr: u64, clock: u64) -> bool {
        let set = self.set_of(line_addr);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == line_addr {
                way.lru = clock;
                return true;
            }
        }
        false
    }

    fn fill(&mut self, line_addr: u64, clock: u64) {
        let set = self.set_of(line_addr);
        if self.sets[set].iter().any(|w| w.valid && w.tag == line_addr) {
            return;
        }
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("nonzero ways");
        *victim = L1Line { tag: line_addr, valid: true, lru: clock };
    }

    fn invalidate(&mut self, line_addr: u64) {
        let set = self.set_of(line_addr);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == line_addr {
                way.valid = false;
            }
        }
    }
}

#[derive(Debug)]
struct L2Array {
    sets: Vec<Vec<L2Line>>,
    set_mask: u64,
    meta_slots: usize,
}

impl L2Array {
    fn new(sets: usize, ways: usize, meta_slots: usize) -> Self {
        let line = L2Line { tag: 0, state: Mesi::Invalid, meta: vec![None; meta_slots], lru: 0 };
        L2Array { sets: vec![vec![line; ways]; sets], set_mask: sets as u64 - 1, meta_slots }
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr & self.set_mask) as usize
    }

    fn get_mut(&mut self, line_addr: u64) -> Option<&mut L2Line> {
        let set = self.set_of(line_addr);
        self.sets[set].iter_mut().find(|w| w.state != Mesi::Invalid && w.tag == line_addr)
    }

    fn get(&self, line_addr: u64) -> Option<&L2Line> {
        let set = self.set_of(line_addr);
        self.sets[set].iter().find(|w| w.state != Mesi::Invalid && w.tag == line_addr)
    }

    /// Insert a line, returning the evicted victim (if it was valid).
    fn fill(
        &mut self,
        line_addr: u64,
        state: Mesi,
        meta: Vec<Option<LastWriter>>,
        clock: u64,
    ) -> Option<L2Line> {
        debug_assert_eq!(meta.len(), self.meta_slots);
        let set = self.set_of(line_addr);
        debug_assert!(self.get(line_addr).is_none(), "fill of present line");
        let victim_idx = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.state == Mesi::Invalid { 0 } else { w.lru + 1 })
            .map(|(i, _)| i)
            .expect("nonzero ways");
        let old = std::mem::replace(
            &mut self.sets[set][victim_idx],
            L2Line { tag: line_addr, state, meta, lru: clock },
        );
        (old.state != Mesi::Invalid).then_some(old)
    }
}

/// Result of a timed memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the data is available to the pipeline.
    pub complete_at: u64,
    /// How the hierarchy serviced the access.
    pub event: CacheEvent,
    /// For loads: the last-writer metadata found for the accessed word, if
    /// it was available.
    pub last_writer: Option<LastWriter>,
}

/// The whole coherent memory system: per-core L1/L2, bus, and memory timing.
#[derive(Debug)]
pub struct MemorySystem {
    line_bytes: u64,
    granularity: MetaGranularity,
    meta_slots: usize,
    l1: Vec<L1Array>,
    l2: Vec<L2Array>,
    l1_lat: u64,
    l2_lat: u64,
    mem_lat: u64,
    bus_cycles: u64,
    bus_free_at: u64,
    clock: u64,
    /// Machine-wide counters (read via [`MemorySystem::stats`]).
    stats: MemStats,
}

impl MemorySystem {
    /// Build the hierarchy described by `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        let meta_slots = match cfg.granularity {
            MetaGranularity::Word => cfg.words_per_line(),
            MetaGranularity::Line => 1,
        };
        MemorySystem {
            line_bytes: cfg.line_bytes,
            granularity: cfg.granularity,
            meta_slots,
            l1: (0..cfg.cores)
                .map(|_| L1Array::new(cfg.l1.sets(cfg.line_bytes), cfg.l1.ways))
                .collect(),
            l2: (0..cfg.cores)
                .map(|_| L2Array::new(cfg.l2.sets(cfg.line_bytes), cfg.l2.ways, meta_slots))
                .collect(),
            l1_lat: cfg.l1.latency,
            l2_lat: cfg.l2.latency,
            mem_lat: cfg.mem_latency,
            bus_cycles: cfg.bus_transfer_cycles(),
            bus_free_at: 0,
            clock: 0,
            stats: MemStats::default(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn line_addr(&self, addr: Addr) -> u64 {
        addr / self.line_bytes
    }

    fn meta_index(&self, addr: Addr) -> usize {
        match self.granularity {
            MetaGranularity::Word => ((addr % self.line_bytes) / crate::isa::WORD_BYTES) as usize,
            MetaGranularity::Line => 0,
        }
    }

    fn bump_clock(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Acquire the bus at or after `earliest`; returns the transaction start.
    fn acquire_bus(&mut self, earliest: u64) -> u64 {
        let start = self.bus_free_at.max(earliest);
        self.bus_free_at = start + self.bus_cycles;
        self.stats.bus_transactions += 1;
        start
    }

    /// Invalidate `line_addr` in every core except `except`; returns the
    /// metadata of a Modified owner's line, if one existed.
    fn invalidate_others(
        &mut self,
        except: usize,
        line_addr: u64,
    ) -> Option<Vec<Option<LastWriter>>> {
        let mut dirty_meta = None;
        for core in 0..self.l2.len() {
            if core == except {
                continue;
            }
            if let Some(line) = self.l2[core].get_mut(line_addr) {
                if line.state == Mesi::Modified {
                    dirty_meta = Some(line.meta.clone());
                }
                line.state = Mesi::Invalid;
                self.l1[core].invalidate(line_addr);
            }
        }
        dirty_meta
    }

    /// Demote a Modified owner of `line_addr` (other than `except`) to
    /// Shared; returns its metadata if one existed (the dirty cache-to-cache
    /// piggyback). Also returns whether any other core holds the line at all.
    fn snoop_for_read(
        &mut self,
        except: usize,
        line_addr: u64,
    ) -> (Option<Vec<Option<LastWriter>>>, bool) {
        let mut dirty_meta = None;
        let mut any_shared = false;
        for core in 0..self.l2.len() {
            if core == except {
                continue;
            }
            if let Some(line) = self.l2[core].get_mut(line_addr) {
                any_shared = true;
                match line.state {
                    Mesi::Modified => {
                        dirty_meta = Some(line.meta.clone());
                        line.state = Mesi::Shared;
                    }
                    Mesi::Exclusive => line.state = Mesi::Shared,
                    Mesi::Shared | Mesi::Invalid => {}
                }
            }
        }
        (dirty_meta, any_shared)
    }

    fn fill_l2(&mut self, core: usize, line_addr: u64, state: Mesi, meta: Vec<Option<LastWriter>>) {
        let clock = self.bump_clock();
        if let Some(victim) = self.l2[core].fill(line_addr, state, meta, clock) {
            // Inclusion: evicting from L2 back-invalidates the L1 copy.
            self.l1[core].invalidate(victim.tag);
            if victim.state == Mesi::Modified {
                // Relaxation 2: data goes to memory, metadata is dropped.
                self.stats.writebacks += 1;
            }
        }
    }

    fn fill_l1(&mut self, core: usize, line_addr: u64) {
        let clock = self.bump_clock();
        self.l1[core].fill(line_addr, clock);
    }

    /// Perform a timed load by `core` of the word at `addr`, issued at `now`.
    pub fn load(&mut self, core: usize, addr: Addr, now: u64) -> AccessResult {
        let line_addr = self.line_addr(addr);
        let widx = self.meta_index(addr);
        let clock = self.bump_clock();

        if self.l1[core].hit(line_addr, clock) {
            self.stats.l1_hits += 1;
            let meta = self.l2[core].get(line_addr).and_then(|l| l.meta[widx]);
            return AccessResult {
                complete_at: now + self.l1_lat,
                event: CacheEvent::L1Hit,
                last_writer: meta,
            };
        }

        if let Some(line) = self.l2[core].get_mut(line_addr) {
            line.lru = clock;
            let meta = line.meta[widx];
            self.stats.l2_hits += 1;
            self.fill_l1(core, line_addr);
            return AccessResult {
                complete_at: now + self.l1_lat + self.l2_lat,
                event: CacheEvent::L2Hit,
                last_writer: meta,
            };
        }

        // Miss: go to the bus.
        let start = self.acquire_bus(now + self.l1_lat + self.l2_lat);
        let (dirty_meta, any_shared) = self.snoop_for_read(core, line_addr);
        let (complete_at, event, meta) = match dirty_meta {
            Some(meta) => {
                // Relaxation 3: metadata rides along only on this path.
                self.stats.cache_to_cache += 1;
                (start + self.bus_cycles, CacheEvent::CacheToCache, meta)
            }
            None => {
                self.stats.mem_fills += 1;
                (start + self.mem_lat, CacheEvent::Memory, vec![None; self.meta_slots])
            }
        };
        let state = if any_shared { Mesi::Shared } else { Mesi::Exclusive };
        let last_writer = meta[widx];
        self.fill_l2(core, line_addr, state, meta);
        self.fill_l1(core, line_addr);
        AccessResult { complete_at, event, last_writer }
    }

    /// Perform a timed store by `core` to the word at `addr`, issued at
    /// `now`, recording `writer` as the word's (or line's) last writer.
    pub fn store(&mut self, core: usize, addr: Addr, now: u64, writer: LastWriter) -> AccessResult {
        let line_addr = self.line_addr(addr);
        let widx = self.meta_index(addr);
        let clock = self.bump_clock();
        let l1_hit = self.l1[core].hit(line_addr, clock);

        let state = self.l2[core].get(line_addr).map(|l| l.state);
        let (complete_at, event) = match state {
            Some(Mesi::Modified) | Some(Mesi::Exclusive) => {
                let (lat, ev) = if l1_hit {
                    (self.l1_lat, CacheEvent::L1Hit)
                } else {
                    self.stats.l2_hits += 1;
                    self.fill_l1(core, line_addr);
                    (self.l1_lat + self.l2_lat, CacheEvent::L2Hit)
                };
                if l1_hit {
                    self.stats.l1_hits += 1;
                }
                (now + lat, ev)
            }
            Some(Mesi::Shared) => {
                // Upgrade: invalidate other copies over the bus.
                let start = self.acquire_bus(now + self.l1_lat + self.l2_lat);
                self.invalidate_others(core, line_addr);
                if !l1_hit {
                    self.fill_l1(core, line_addr);
                }
                (start + self.bus_cycles, CacheEvent::L2Hit)
            }
            Some(Mesi::Invalid) | None => {
                // Read-for-ownership on the bus.
                let start = self.acquire_bus(now + self.l1_lat + self.l2_lat);
                let dirty_meta = self.invalidate_others(core, line_addr);
                let (complete_at, event, meta) = match dirty_meta {
                    Some(meta) => {
                        self.stats.cache_to_cache += 1;
                        (start + self.bus_cycles, CacheEvent::CacheToCache, meta)
                    }
                    None => {
                        self.stats.mem_fills += 1;
                        (start + self.mem_lat, CacheEvent::Memory, vec![None; self.meta_slots])
                    }
                };
                self.fill_l2(core, line_addr, Mesi::Modified, meta);
                self.fill_l1(core, line_addr);
                (complete_at, event)
            }
        };

        // The line is now Modified with updated metadata.
        let line = self.l2[core].get_mut(line_addr).expect("line present after store path");
        line.state = Mesi::Modified;
        line.lru = clock;
        line.meta[widx] = Some(writer);

        AccessResult { complete_at, event, last_writer: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> MachineConfig {
        MachineConfig {
            cores: 2,
            l1: crate::config::CacheConfig { size_bytes: 1024, ways: 2, latency: 2 },
            l2: crate::config::CacheConfig { size_bytes: 4096, ways: 2, latency: 10 },
            line_bytes: 64,
            ..Default::default()
        }
    }

    fn w(pc: u32, tid: u32) -> LastWriter {
        LastWriter { pc, tid }
    }

    #[test]
    fn cold_load_misses_to_memory_then_hits_l1() {
        let mut ms = MemorySystem::new(&small_cfg());
        let r = ms.load(0, 0x2000, 100);
        assert_eq!(r.event, CacheEvent::Memory);
        assert_eq!(r.last_writer, None);
        assert!(r.complete_at >= 100 + 2 + 10 + 300);

        let r2 = ms.load(0, 0x2000, r.complete_at);
        assert_eq!(r2.event, CacheEvent::L1Hit);
        assert_eq!(r2.complete_at, r.complete_at + 2);
    }

    #[test]
    fn store_then_local_load_forms_dep() {
        let mut ms = MemorySystem::new(&small_cfg());
        ms.store(0, 0x2000, 0, w(7, 0));
        let r = ms.load(0, 0x2000, 50);
        assert_eq!(r.last_writer, Some(w(7, 0)));
        assert_eq!(r.event, CacheEvent::L1Hit);
    }

    #[test]
    fn dirty_cache_to_cache_piggybacks_metadata() {
        let mut ms = MemorySystem::new(&small_cfg());
        ms.store(0, 0x2000, 0, w(7, 0));
        let r = ms.load(1, 0x2000, 400);
        assert_eq!(r.event, CacheEvent::CacheToCache);
        assert_eq!(r.last_writer, Some(w(7, 0)));
        assert_eq!(ms.stats().cache_to_cache, 1);
    }

    #[test]
    fn clean_remote_copy_gives_no_metadata() {
        let mut ms = MemorySystem::new(&small_cfg());
        ms.store(0, 0x2000, 0, w(7, 0));
        // Core 1 reads (dirty c2c, owner demoted to Shared, meta transfers).
        let _ = ms.load(1, 0x2000, 400);
        // Core 0 evicts nothing; now core 1 stores: upgrade, then core 0
        // reloads after invalidation — but core 1's line is dirty, so meta
        // still piggybacks. To get a *clean* transfer, read a line that only
        // ever lived clean in a remote cache:
        let _ = ms.load(0, 0x4000, 1000); // core 0 loads clean from memory
        let r = ms.load(1, 0x4000, 2000); // remote copy exists but clean
        assert_eq!(r.event, CacheEvent::Memory);
        assert_eq!(r.last_writer, None);
    }

    #[test]
    fn word_granularity_distinguishes_words_in_a_line() {
        let mut ms = MemorySystem::new(&small_cfg());
        ms.store(0, 0x2000, 0, w(7, 0));
        ms.store(0, 0x2008, 0, w(8, 0));
        assert_eq!(ms.load(0, 0x2000, 50).last_writer, Some(w(7, 0)));
        assert_eq!(ms.load(0, 0x2008, 60).last_writer, Some(w(8, 0)));
        // Untouched word in the same line: no metadata.
        assert_eq!(ms.load(0, 0x2010, 70).last_writer, None);
    }

    #[test]
    fn line_granularity_aliases_words() {
        let cfg = MachineConfig { granularity: MetaGranularity::Line, ..small_cfg() };
        let mut ms = MemorySystem::new(&cfg);
        ms.store(0, 0x2000, 0, w(7, 0));
        ms.store(0, 0x2008, 0, w(8, 0));
        // Both words report the line's single (most recent) writer.
        assert_eq!(ms.load(0, 0x2000, 50).last_writer, Some(w(8, 0)));
        assert_eq!(ms.load(0, 0x2008, 60).last_writer, Some(w(8, 0)));
    }

    #[test]
    fn eviction_drops_metadata() {
        let cfg = small_cfg(); // L2: 4096 B, 2-way, 64 B lines -> 32 sets
        let mut ms = MemorySystem::new(&cfg);
        ms.store(0, 0x2000, 0, w(7, 0));
        // Two more lines mapping to the same L2 set evict the first
        // (set stride = sets * line = 32 * 64 = 2048 bytes).
        ms.store(0, 0x2000 + 2048, 10, w(8, 0));
        ms.store(0, 0x2000 + 4096, 20, w(9, 0));
        assert!(ms.stats().writebacks >= 1);
        let r = ms.load(0, 0x2000, 5000);
        assert_eq!(r.last_writer, None, "metadata must not survive eviction");
    }

    #[test]
    fn store_upgrade_invalidates_sharers() {
        let mut ms = MemorySystem::new(&small_cfg());
        let _ = ms.load(0, 0x2000, 0); // E in core 0
        let _ = ms.load(1, 0x2000, 500); // both S
                                         // Core 0 stores: upgrade, core 1 must lose the line.
        ms.store(0, 0x2000, 1000, w(3, 0));
        let r = ms.load(1, 0x2000, 2000);
        // Core 1 refetches; core 0 has it dirty -> c2c with metadata.
        assert_eq!(r.event, CacheEvent::CacheToCache);
        assert_eq!(r.last_writer, Some(w(3, 0)));
    }

    #[test]
    fn rfo_transfers_metadata_from_dirty_owner() {
        let mut ms = MemorySystem::new(&small_cfg());
        ms.store(0, 0x2000, 0, w(3, 0));
        // Core 1 stores to a *different word* in the same line: RFO takes the
        // dirty line (and word 0's metadata) from core 0.
        ms.store(1, 0x2008, 500, w(4, 1));
        let r = ms.load(1, 0x2000, 1500);
        assert_eq!(r.event, CacheEvent::L1Hit);
        assert_eq!(r.last_writer, Some(w(3, 0)), "word 0 metadata survived the RFO");
        let r = ms.load(1, 0x2008, 1600);
        assert_eq!(r.last_writer, Some(w(4, 1)));
    }

    #[test]
    fn bus_serializes_transactions() {
        let mut ms = MemorySystem::new(&small_cfg());
        let a = ms.load(0, 0x2000, 100);
        let b = ms.load(1, 0x8000, 100);
        // Both requests arrive at the bus at the same time; the second must
        // start after the first's bus occupancy.
        assert!(b.complete_at > a.complete_at - 300 + 3, "second txn delayed by bus");
        assert_eq!(ms.stats().bus_transactions, 2);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = small_cfg(); // L1: 1024 B, 2-way, 64 B lines -> 8 sets
        let mut ms = MemorySystem::new(&cfg);
        let _ = ms.load(0, 0x2000, 0);
        // Evict from L1 (stride = 8 sets * 64 = 512 bytes), both stay in L2.
        let _ = ms.load(0, 0x2000 + 512, 1000);
        let _ = ms.load(0, 0x2000 + 1024, 2000);
        let r = ms.load(0, 0x2000, 3000);
        assert_eq!(r.event, CacheEvent::L2Hit);
    }
}
