//! The chip-multiprocessor machine: cores with reorder buffers, thread
//! spawn/join, locks, and the main cycle loop.
//!
//! ## Execution model
//!
//! The simulator is *execute-at-dispatch*: when a core dispatches an
//! instruction, its architectural effect happens immediately (registers and
//! functional memory are updated, branches resolve), while the timing model
//! decides when it completes and retires. Cores are processed in index order
//! within a cycle, so the global functional order is deterministic given the
//! configuration seed. There is no wrong-path speculation to model: every
//! dispatched instruction retires, which matches the paper's rule that RAW
//! dependences are formed once a load is non-speculative.
//!
//! Loads carry their [`LoadEvent`] (with the RAW dependence formed from
//! cache metadata at dispatch) through the ROB and must be *accepted* by the
//! core's [`CoreAttachment`] before they may retire — this is the ACT
//! module's back-pressure point (a full NN input FIFO stalls retirement).
//!
//! Observers are notified at dispatch, in functional order, which is what
//! trace-based offline analysis needs.

use crate::attach::{CoreAttachment, NullAttachment, Observer};
use crate::config::MachineConfig;
use crate::events::{BranchEvent, LastWriter, LoadEvent, StoreEvent, ThreadId};
use crate::isa::{Addr, Instr, Pc, Reg, Word, FP, NUM_REGS, SP};
use crate::mem::{AccessFault, Memory};
use crate::memsys::MemorySystem;
use crate::outcome::{CrashKind, RunOutcome};
use crate::program::{Program, DATA_BASE, STACK_BASE, STACK_SIZE};
use crate::stats::Stats;
use act_rng::rngs::StdRng;
use act_rng::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

/// Cycles charged for acquiring a free lock (roughly an L2 + bus round trip;
/// lock operations deliberately bypass the data caches so that
/// synchronization does not generate RAW dependences, mirroring the paper's
/// filtering of synchronization accesses).
const LOCK_LATENCY: u64 = 20;

/// Cycles charged for a spawn instruction.
const SPAWN_LATENCY: u64 = 40;

/// An executing thread's architectural state.
#[derive(Debug, Clone)]
struct ThreadCtx {
    tid: ThreadId,
    regs: [Word; NUM_REGS],
    pc: Pc,
    /// Dispatch of new instructions stops once a `halt` is in flight.
    halting: bool,
    /// Why the thread cannot currently dispatch (travels with the thread
    /// across context switches).
    blocked: Option<Blocked>,
}

impl ThreadCtx {
    fn new(tid: ThreadId, pc: Pc, arg: Word) -> Self {
        let mut regs = [0; NUM_REGS];
        regs[1] = arg;
        let stack_top = STACK_BASE + (tid as u64 + 1) * STACK_SIZE - crate::isa::WORD_BYTES;
        regs[SP.0 as usize] = stack_top as Word;
        regs[FP.0 as usize] = stack_top as Word;
        ThreadCtx { tid, regs, pc, halting: false, blocked: None }
    }

    fn read(&self, r: Reg) -> Word {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    fn write(&mut self, r: Reg, v: Word) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }
}

/// Why a thread cannot currently dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Waiting for the lock at this address.
    Lock(Addr),
    /// Waiting for this thread to halt.
    Join(ThreadId),
    /// Waiting at the barrier on this address, for the given generation to
    /// complete.
    Barrier(Addr, u64),
}

/// What a ROB entry does at retirement.
#[derive(Debug, Clone)]
enum RobInfo {
    Plain,
    /// A load that must be accepted by the core attachment before retiring.
    Load {
        ev: LoadEvent,
        accepted: bool,
    },
    Halt,
}

#[derive(Debug, Clone)]
struct RobEntry {
    complete_at: u64,
    info: RobInfo,
}

#[derive(Debug)]
struct Core {
    thread: Option<ThreadCtx>,
    rob: VecDeque<RobEntry>,
    /// Cycle at which the current thread was scheduled onto this core.
    placed_at: u64,
    rng: StdRng,
}

impl Core {
    fn new(seed: u64, index: usize) -> Self {
        Core {
            thread: None,
            rob: VecDeque::new(),
            placed_at: 0,
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ index as u64),
        }
    }
}

/// The simulated machine.
///
/// # Examples
///
/// ```
/// use act_sim::asm::Asm;
/// use act_sim::isa::Reg;
/// use act_sim::machine::Machine;
/// use act_sim::config::MachineConfig;
///
/// let mut a = Asm::new();
/// a.func("main");
/// a.imm(Reg(1), 21);
/// a.alui(act_sim::isa::AluOp::Mul, Reg(2), Reg(1), 2);
/// a.out(Reg(2));
/// a.halt();
/// let program = a.finish().unwrap();
///
/// let mut m = Machine::new(&program, MachineConfig::default());
/// let outcome = m.run();
/// assert_eq!(outcome.output(), Some(&[42][..]));
/// ```
pub struct Machine<'p> {
    cfg: MachineConfig,
    program: &'p Program,
    mem: Memory,
    memsys: MemorySystem,
    cores: Vec<Core>,
    attachments: Vec<Box<dyn CoreAttachment>>,
    /// Threads spawned but not yet placed on a core.
    pending: VecDeque<ThreadCtx>,
    halted: HashSet<ThreadId>,
    locks: HashMap<Addr, ThreadId>,
    /// Barrier state per address: (threads arrived, completed generations).
    barriers: HashMap<Addr, (u64, u64)>,
    next_tid: ThreadId,
    output: Vec<Word>,
    cycle: u64,
    stats: Stats,
}

impl<'p> std::fmt::Debug for Machine<'p> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cycle", &self.cycle)
            .field("cores", &self.cores.len())
            .field("next_tid", &self.next_tid)
            .finish_non_exhaustive()
    }
}

impl<'p> Machine<'p> {
    /// Build a machine for `program` under `cfg`, with no attachments.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MachineConfig::validate`] or the program fails
    /// [`Program::validate`].
    pub fn new(program: &'p Program, cfg: MachineConfig) -> Self {
        cfg.validate();
        program.validate().expect("invalid program");
        let mut mem = Memory::new();
        if !program.data.is_empty() {
            mem.load_segment(DATA_BASE, &program.data);
        }
        // Map a generous stack area for up to 64 threads.
        mem.map_region(STACK_BASE, 64 * STACK_SIZE);
        let memsys = MemorySystem::new(&cfg);
        let cores = (0..cfg.cores).map(|i| Core::new(cfg.seed, i)).collect();
        let attachments =
            (0..cfg.cores).map(|_| Box::new(NullAttachment) as Box<dyn CoreAttachment>).collect();
        let stats = Stats::new(cfg.cores);
        Machine {
            cfg,
            program,
            mem,
            memsys,
            cores,
            attachments,
            pending: VecDeque::new(),
            halted: HashSet::new(),
            locks: HashMap::new(),
            barriers: HashMap::new(),
            next_tid: 0,
            output: Vec::new(),
            cycle: 0,
            stats,
        }
    }

    /// Install a per-core attachment (e.g. an ACT module) on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn attach(&mut self, core: usize, attachment: Box<dyn CoreAttachment>) {
        self.attachments[core] = attachment;
    }

    /// Accumulated statistics (valid after [`Machine::run`]).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Run to completion with no observer.
    pub fn run(&mut self) -> RunOutcome {
        self.run_observed(&mut crate::attach::NullObserver)
    }

    /// Run to completion, reporting dispatch-order events to `observer`.
    pub fn run_observed(&mut self, observer: &mut dyn Observer) -> RunOutcome {
        // Start the main thread on core 0.
        let main = self.create_thread(self.program.entry, 0);
        self.place_thread(main, observer);

        loop {
            self.cycle += 1;
            if self.cycle >= self.cfg.max_cycles {
                self.finish_stats();
                return RunOutcome::Timeout { cycle: self.cycle };
            }

            self.preempt(observer);

            // Place pending threads on free cores.
            while let Some(core) = self.free_core() {
                match self.pending.pop_front() {
                    Some(ctx) => self.place_on(core, ctx, observer),
                    None => break,
                }
            }

            let mut any_live = false;
            let mut any_progress = false;

            for c in 0..self.cores.len() {
                self.attachments[c].tick(self.cycle);
                if self.cores[c].thread.is_some() {
                    any_live = true;
                    self.stats.cores[c].busy_cycles += 1;
                }
                let retired = self.retire(c, observer);
                let dispatch = match self.dispatch(c, observer) {
                    Ok(n) => n,
                    Err(outcome) => {
                        self.drain_inflight_loads();
                        self.finish_stats();
                        return outcome;
                    }
                };
                if retired > 0 || dispatch > 0 || !self.cores[c].rob.is_empty() {
                    any_progress = true;
                }
            }

            if !any_live && self.pending.is_empty() {
                self.finish_stats();
                return RunOutcome::Completed { output: std::mem::take(&mut self.output) };
            }

            if any_live && !any_progress && self.all_blocked() {
                self.finish_stats();
                return RunOutcome::Deadlock { cycle: self.cycle };
            }
        }
    }

    fn finish_stats(&mut self) {
        self.stats.total_cycles = self.cycle;
        // Dependence-availability counters are tracked at machine level;
        // everything else comes from the memory system.
        let deps_formed = self.stats.mem.deps_formed;
        let deps_missing = self.stats.mem.deps_missing;
        self.stats.mem = *self.memsys.stats();
        self.stats.mem.deps_formed = deps_formed;
        self.stats.mem.deps_missing = deps_missing;
    }

    fn all_blocked(&self) -> bool {
        self.cores.iter().all(|c| match &c.thread {
            None => true,
            Some(t) => t.blocked.is_some() && c.rob.is_empty(),
        })
    }

    fn free_core(&self) -> Option<usize> {
        self.cores.iter().position(|c| c.thread.is_none())
    }

    fn create_thread(&mut self, entry: Pc, arg: Word) -> ThreadCtx {
        let tid = self.next_tid;
        self.next_tid += 1;
        self.stats.threads_spawned += 1;
        ThreadCtx::new(tid, entry, arg)
    }

    fn place_thread(&mut self, ctx: ThreadCtx, observer: &mut dyn Observer) {
        match self.free_core() {
            Some(core) => self.place_on(core, ctx, observer),
            None => self.pending.push_back(ctx),
        }
    }

    fn place_on(&mut self, core: usize, ctx: ThreadCtx, observer: &mut dyn Observer) {
        let tid = ctx.tid;
        self.cores[core].thread = Some(ctx);
        self.cores[core].placed_at = self.cycle;
        self.attachments[core].on_thread_start(tid);
        observer.on_thread_start(tid, self.cycle);
    }

    /// Preemptive scheduling (paper §IV-D): when threads are waiting for a
    /// core, swap out any thread whose quantum expired — and any blocked
    /// thread — once its ROB has drained (the "flush in-flight inputs"
    /// requirement). The attachment callbacks save/restore the neural
    /// network's weight registers exactly like the OS would via
    /// `ldwt`/`stwt`.
    fn preempt(&mut self, observer: &mut dyn Observer) {
        if self.cfg.preemption_quantum == 0 || self.pending.is_empty() {
            return;
        }
        for c in 0..self.cores.len() {
            if self.pending.is_empty() {
                break;
            }
            let swap = match &self.cores[c].thread {
                Some(t) if self.cores[c].rob.is_empty() && !t.halting => {
                    t.blocked.is_some()
                        || self.cycle - self.cores[c].placed_at >= self.cfg.preemption_quantum
                }
                _ => false,
            };
            if swap {
                let ctx = self.cores[c].thread.take().expect("checked above");
                self.attachments[c].on_thread_end(ctx.tid);
                observer.on_thread_end(ctx.tid, self.cycle);
                self.pending.push_back(ctx);
                let next = self.pending.pop_front().expect("pending nonempty");
                self.place_on(c, next, observer);
            }
        }
    }

    /// Retire up to `retire_width` completed instructions from core `c`.
    fn retire(&mut self, c: usize, observer: &mut dyn Observer) -> usize {
        let mut retired = 0;
        for _ in 0..self.cfg.retire_width {
            let Some(head) = self.cores[c].rob.front_mut() else { break };
            if head.complete_at > self.cycle {
                break;
            }
            if let RobInfo::Load { ev, accepted } = &mut head.info {
                if !*accepted {
                    if self.attachments[c].offer_load(ev) {
                        *accepted = true;
                    } else {
                        self.stats.cores[c].attach_stall_cycles += 1;
                        break;
                    }
                }
            }
            let entry = self.cores[c].rob.pop_front().expect("head exists");
            self.stats.cores[c].retired += 1;
            retired += 1;
            if let RobInfo::Halt = entry.info {
                let ctx = self.cores[c].thread.take().expect("halting thread");
                debug_assert!(self.cores[c].rob.is_empty(), "halt retires last");
                self.halted.insert(ctx.tid);
                self.attachments[c].on_thread_end(ctx.tid);
                observer.on_thread_end(ctx.tid, self.cycle);
            }
        }
        retired
    }

    /// Dispatch up to `issue_width` instructions on core `c`.
    ///
    /// Returns the number dispatched, or the run-ending outcome on a crash.
    fn dispatch(&mut self, c: usize, observer: &mut dyn Observer) -> Result<usize, RunOutcome> {
        let mut dispatched = 0;
        for _ in 0..self.cfg.issue_width {
            if self.cores[c].thread.is_none() {
                break;
            }
            if self.cores[c].rob.len() >= self.cfg.rob_entries {
                self.stats.cores[c].rob_full_cycles += 1;
                break;
            }
            // Resolve blocking conditions.
            if let Some(blocked) = self.cores[c].thread.as_ref().unwrap().blocked {
                match blocked {
                    Blocked::Lock(addr) => {
                        if self.locks.contains_key(&addr) {
                            break;
                        }
                        let tid = self.cores[c].thread.as_ref().unwrap().tid;
                        self.locks.insert(addr, tid);
                        self.stats.lock_acquires += 1;
                        self.thread_mut(c).blocked = None;
                        // The lock instruction itself was consumed when we
                        // blocked; charge its latency now.
                        self.cores[c].rob.push_back(RobEntry {
                            complete_at: self.cycle + LOCK_LATENCY,
                            info: RobInfo::Plain,
                        });
                        dispatched += 1;
                        continue;
                    }
                    Blocked::Join(tid) => {
                        if !self.halted.contains(&tid) {
                            break;
                        }
                        self.thread_mut(c).blocked = None;
                        self.cores[c].rob.push_back(RobEntry {
                            complete_at: self.cycle + 1,
                            info: RobInfo::Plain,
                        });
                        dispatched += 1;
                        continue;
                    }
                    Blocked::Barrier(addr, gen) => {
                        let done = self.barriers.get(&addr).is_some_and(|&(_, g)| g > gen);
                        if !done {
                            break;
                        }
                        self.thread_mut(c).blocked = None;
                        self.cores[c].rob.push_back(RobEntry {
                            complete_at: self.cycle + LOCK_LATENCY,
                            info: RobInfo::Plain,
                        });
                        dispatched += 1;
                        continue;
                    }
                }
            }
            if self.cores[c].thread.as_ref().unwrap().halting {
                break;
            }
            // Interleaving jitter: occasionally skip the rest of this cycle.
            if self.cfg.jitter_ppm > 0
                && self.cores[c].rng.gen_range(0..1_000_000u32) < self.cfg.jitter_ppm
            {
                break;
            }
            match self.dispatch_one(c, observer)? {
                true => dispatched += 1,
                false => break,
            }
        }
        Ok(dispatched)
    }

    /// Dispatch a single instruction. `Ok(false)` means "could not dispatch
    /// this cycle" (fence drain, new block, structural stall).
    fn dispatch_one(&mut self, c: usize, observer: &mut dyn Observer) -> Result<bool, RunOutcome> {
        let (pc, tid) = {
            let t = self.cores[c].thread.as_ref().unwrap();
            (t.pc, t.tid)
        };
        let instr = self.program.instrs[pc as usize].clone();
        let now = self.cycle;

        let crash = |kind: CrashKind, output: &[Word], cycle: u64| RunOutcome::Crash {
            kind,
            pc,
            tid,
            cycle,
            output: output.to_vec(),
        };

        match instr {
            Instr::Imm { rd, value } => {
                self.thread_mut(c).write(rd, value);
                self.advance(c);
                self.push_plain(c, now + 1);
            }
            Instr::Alu { op, rd, ra, rb } => {
                let t = self.thread_mut(c);
                let (a, b) = (t.read(ra), t.read(rb));
                match op.apply(a, b) {
                    Some(v) => t.write(rd, v),
                    None => return Err(crash(CrashKind::DivideByZero, &self.output, now)),
                }
                self.advance(c);
                self.push_plain(c, now + op.latency());
            }
            Instr::AluI { op, rd, ra, imm } => {
                let t = self.thread_mut(c);
                let a = t.read(ra);
                match op.apply(a, imm) {
                    Some(v) => t.write(rd, v),
                    None => return Err(crash(CrashKind::DivideByZero, &self.output, now)),
                }
                self.advance(c);
                self.push_plain(c, now + op.latency());
            }
            Instr::Load { rd, base, offset } => {
                let t = self.cores[c].thread.as_ref().unwrap();
                let addr = (t.read(base) as u64).wrapping_add(offset as u64);
                let stack_access = base == SP || base == FP;
                if let Err(fault) = self.mem.check(addr) {
                    let kind = match fault {
                        AccessFault::Null => CrashKind::NullDeref,
                        AccessFault::Unmapped => CrashKind::OutOfBounds,
                    };
                    return Err(crash(kind, &self.output, now));
                }
                let value = self.mem.read(addr);
                let access = self.memsys.load(c, addr, now);
                let dep = if stack_access {
                    None
                } else {
                    access.last_writer.map(|w| crate::events::RawDep {
                        store_pc: w.pc,
                        load_pc: pc,
                        inter_thread: w.tid != tid,
                    })
                };
                if !stack_access {
                    if dep.is_some() {
                        // MemStats counters live inside MemorySystem; mirror
                        // dependence availability here at machine level.
                        self.stats.mem.deps_formed += 1;
                    } else {
                        self.stats.mem.deps_missing += 1;
                    }
                }
                let ev = LoadEvent {
                    cycle: now,
                    core: c,
                    tid,
                    pc,
                    addr,
                    cache_event: access.event,
                    dep,
                    stack_access,
                };
                self.thread_mut(c).write(rd, value);
                self.advance(c);
                observer.on_load(&ev);
                self.stats.cores[c].loads += 1;
                self.cores[c].rob.push_back(RobEntry {
                    complete_at: access.complete_at,
                    info: RobInfo::Load { ev, accepted: false },
                });
            }
            Instr::Store { rs, base, offset } => {
                let t = self.cores[c].thread.as_ref().unwrap();
                let addr = (t.read(base) as u64).wrapping_add(offset as u64);
                let value = t.read(rs);
                let stack_access = base == SP || base == FP;
                if let Err(fault) = self.mem.check(addr) {
                    let kind = match fault {
                        AccessFault::Null => CrashKind::NullDeref,
                        AccessFault::Unmapped => CrashKind::OutOfBounds,
                    };
                    return Err(crash(kind, &self.output, now));
                }
                self.mem.write(addr, value);
                let access = self.memsys.store(c, addr, now, LastWriter { pc, tid });
                let ev = StoreEvent { cycle: now, core: c, tid, pc, addr, stack_access };
                self.advance(c);
                observer.on_store(&ev);
                self.attachments[c].on_store(&ev);
                self.stats.cores[c].stores += 1;
                self.push_plain(c, access.complete_at);
            }
            Instr::Jump { target } => {
                self.thread_mut(c).pc = target;
                self.push_plain(c, now + 1);
            }
            Instr::Bnz { cond, target } | Instr::Bez { cond, target } => {
                let t = self.cores[c].thread.as_ref().unwrap();
                let v = t.read(cond);
                let want_nz = matches!(instr, Instr::Bnz { .. });
                let taken = (v != 0) == want_nz;
                let ev = BranchEvent { cycle: now, core: c, tid, pc, taken };
                let t = self.thread_mut(c);
                t.pc = if taken { target } else { t.pc + 1 };
                observer.on_branch(&ev);
                self.stats.cores[c].branches += 1;
                self.push_plain(c, now + 1);
            }
            Instr::Spawn { rd, entry, arg } => {
                let argv = self.cores[c].thread.as_ref().unwrap().read(arg);
                let child = self.create_thread(entry, argv);
                let child_tid = child.tid;
                self.place_thread(child, observer);
                self.thread_mut(c).write(rd, child_tid as Word);
                self.advance(c);
                self.push_plain(c, now + SPAWN_LATENCY);
            }
            Instr::Join { tid: tr } => {
                let target = self.cores[c].thread.as_ref().unwrap().read(tr) as ThreadId;
                self.advance(c);
                if self.halted.contains(&target) {
                    self.push_plain(c, now + 1);
                } else {
                    self.thread_mut(c).blocked = Some(Blocked::Join(target));
                    return Ok(false);
                }
            }
            Instr::Lock { base, offset } => {
                let t = self.cores[c].thread.as_ref().unwrap();
                let addr = (t.read(base) as u64).wrapping_add(offset as u64);
                self.advance(c);
                if self.locks.contains_key(&addr) {
                    self.thread_mut(c).blocked = Some(Blocked::Lock(addr));
                    return Ok(false);
                }
                self.locks.insert(addr, tid);
                self.stats.lock_acquires += 1;
                self.push_plain(c, now + LOCK_LATENCY);
            }
            Instr::Unlock { base, offset } => {
                let t = self.cores[c].thread.as_ref().unwrap();
                let addr = (t.read(base) as u64).wrapping_add(offset as u64);
                self.locks.remove(&addr);
                self.advance(c);
                self.push_plain(c, now + 1);
            }
            Instr::Fence => {
                if !self.cores[c].rob.is_empty() {
                    return Ok(false);
                }
                self.advance(c);
                self.push_plain(c, now + 1);
            }
            Instr::Barrier { base, offset } => {
                let t = self.cores[c].thread.as_ref().unwrap();
                let addr = (t.read(base) as u64).wrapping_add(offset as u64);
                if let Err(fault) = self.mem.check(addr) {
                    let kind = match fault {
                        AccessFault::Null => CrashKind::NullDeref,
                        AccessFault::Unmapped => CrashKind::OutOfBounds,
                    };
                    return Err(crash(kind, &self.output, now));
                }
                let expected = self.mem.read(addr).max(1) as u64;
                self.advance(c);
                let entry = self.barriers.entry(addr).or_insert((0, 0));
                entry.0 += 1;
                if entry.0 >= expected {
                    // Last arrival releases everyone and completes the
                    // generation; it pays the synchronization latency too.
                    entry.0 = 0;
                    entry.1 += 1;
                    self.push_plain(c, now + LOCK_LATENCY);
                } else {
                    let gen = entry.1;
                    self.thread_mut(c).blocked = Some(Blocked::Barrier(addr, gen));
                    return Ok(false);
                }
            }
            Instr::Out { rs } => {
                let v = self.cores[c].thread.as_ref().unwrap().read(rs);
                self.output.push(v);
                self.advance(c);
                self.push_plain(c, now + 1);
            }
            Instr::Assert { cond, code } => {
                let v = self.cores[c].thread.as_ref().unwrap().read(cond);
                if v == 0 {
                    return Err(crash(CrashKind::AssertFailed(code), &self.output, now));
                }
                self.advance(c);
                self.push_plain(c, now + 1);
            }
            Instr::Halt => {
                let t = self.thread_mut(c);
                t.halting = true;
                // Halt completes only when it is the last thing in the ROB;
                // give it a completion far enough that earlier entries drain
                // naturally (retirement is in order anyway).
                self.cores[c].rob.push_back(RobEntry { complete_at: now + 1, info: RobInfo::Halt });
            }
            Instr::Nop => {
                self.advance(c);
                self.push_plain(c, now + 1);
            }
        }
        Ok(true)
    }

    fn thread_mut(&mut self, c: usize) -> &mut ThreadCtx {
        self.cores[c].thread.as_mut().expect("core has thread")
    }

    fn advance(&mut self, c: usize) {
        self.thread_mut(c).pc += 1;
    }

    fn push_plain(&mut self, c: usize, complete_at: u64) {
        self.cores[c].rob.push_back(RobEntry { complete_at, info: RobInfo::Plain });
    }

    /// On a crash, in-flight loads that have not yet been offered to the
    /// core attachment are force-drained into it so the ACT module's debug
    /// buffer contains the dependences immediately preceding the failure
    /// (the paper forms dependences at execution, before retirement).
    fn drain_inflight_loads(&mut self) {
        for c in 0..self.cores.len() {
            let entries: Vec<RobEntry> = self.cores[c].rob.drain(..).collect();
            for entry in entries {
                if let RobInfo::Load { ev, accepted: false } = entry.info {
                    let mut tick = self.cycle;
                    for _ in 0..10_000 {
                        if self.attachments[c].offer_load(&ev) {
                            break;
                        }
                        tick += 1;
                        self.attachments[c].tick(tick);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::AluOp;

    const R1: Reg = Reg(1);
    const R2: Reg = Reg(2);
    const R3: Reg = Reg(3);
    const R4: Reg = Reg(4);

    fn quiet(seed: u64) -> MachineConfig {
        MachineConfig { jitter_ppm: 0, seed, ..Default::default() }
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut a = Asm::new();
        a.func("main");
        a.imm(R1, 6);
        a.imm(R2, 7);
        a.alu(AluOp::Mul, R3, R1, R2);
        a.out(R3);
        a.halt();
        let p = a.finish().unwrap();
        let mut m = Machine::new(&p, quiet(0));
        assert_eq!(m.run(), RunOutcome::Completed { output: vec![42] });
        assert!(m.stats().total_cycles > 0);
        assert_eq!(m.stats().cores[0].retired, 5);
    }

    #[test]
    fn loop_sums_and_branches_counted() {
        let mut a = Asm::new();
        a.func("main");
        a.imm(R1, 0); // i
        a.imm(R2, 0); // sum
        let top = a.label_here();
        a.add(R2, R2, R1);
        a.addi(R1, R1, 1);
        a.alui(AluOp::Lt, R3, R1, 10);
        a.bnz(R3, top);
        a.out(R2);
        a.halt();
        let p = a.finish().unwrap();
        let mut m = Machine::new(&p, quiet(0));
        assert_eq!(m.run(), RunOutcome::Completed { output: vec![45] });
        assert_eq!(m.stats().cores[0].branches, 10);
    }

    #[test]
    fn memory_round_trip_forms_intra_thread_dep() {
        let mut a = Asm::new();
        let buf = a.static_zeroed(2);
        a.func("main");
        a.imm(R1, buf as i64);
        let st = a.here();
        a.store(R2, R1, 0);
        a.imm(R2, 5);
        a.store(R2, R1, 8);
        let ld = a.here();
        a.load(R3, R1, 0);
        a.out(R3);
        a.halt();
        let p = a.finish().unwrap();

        struct Collect(Vec<LoadEvent>);
        impl Observer for Collect {
            fn on_load(&mut self, ev: &LoadEvent) {
                self.0.push(*ev);
            }
        }
        let mut obs = Collect(Vec::new());
        let mut m = Machine::new(&p, quiet(0));
        let out = m.run_observed(&mut obs);
        assert!(out.completed());
        assert_eq!(obs.0.len(), 1);
        let dep = obs.0[0].dep.expect("dep formed");
        assert_eq!(dep.store_pc, st);
        assert_eq!(dep.load_pc, ld);
        assert!(!dep.inter_thread);
    }

    #[test]
    fn null_deref_crashes() {
        let mut a = Asm::new();
        a.func("main");
        a.imm(R1, 0);
        a.load(R2, R1, 0);
        a.halt();
        let p = a.finish().unwrap();
        let mut m = Machine::new(&p, quiet(0));
        match m.run() {
            RunOutcome::Crash { kind, pc, .. } => {
                assert_eq!(kind, CrashKind::NullDeref);
                assert_eq!(pc, 1);
            }
            other => panic!("expected crash, got {other}"),
        }
    }

    #[test]
    fn out_of_bounds_crashes() {
        let mut a = Asm::new();
        let buf = a.static_zeroed(1);
        a.func("main");
        a.imm(R1, buf as i64);
        a.load(R2, R1, 8 * 100); // way past the data segment
        a.halt();
        let p = a.finish().unwrap();
        let mut m = Machine::new(&p, quiet(0));
        match m.run() {
            RunOutcome::Crash { kind, .. } => assert_eq!(kind, CrashKind::OutOfBounds),
            other => panic!("expected crash, got {other}"),
        }
    }

    #[test]
    fn divide_by_zero_crashes() {
        let mut a = Asm::new();
        a.func("main");
        a.imm(R1, 5);
        a.imm(R2, 0);
        a.alu(AluOp::Div, R3, R1, R2);
        a.halt();
        let p = a.finish().unwrap();
        let mut m = Machine::new(&p, quiet(0));
        match m.run() {
            RunOutcome::Crash { kind, .. } => assert_eq!(kind, CrashKind::DivideByZero),
            other => panic!("expected crash, got {other}"),
        }
    }

    #[test]
    fn assert_failure_crashes_with_code() {
        let mut a = Asm::new();
        a.func("main");
        a.imm(R1, 0);
        a.assert_nz(R1, 77);
        a.halt();
        let p = a.finish().unwrap();
        let mut m = Machine::new(&p, quiet(0));
        match m.run() {
            RunOutcome::Crash { kind, .. } => assert_eq!(kind, CrashKind::AssertFailed(77)),
            other => panic!("expected crash, got {other}"),
        }
    }

    fn two_thread_program() -> crate::program::Program {
        // Worker writes 99 to buf[0]; main joins then reads it.
        let mut a = Asm::new();
        let buf = a.static_zeroed(1);
        a.func("main");
        let worker = a.new_label();
        a.imm(R2, 0);
        let spawn_pc = a.here();
        let _ = spawn_pc;
        a.spawn(R3, worker, R2);
        a.join(R3);
        a.imm(R1, buf as i64);
        a.load(R4, R1, 0);
        a.out(R4);
        a.halt();
        a.func("worker");
        a.bind(worker);
        a.imm(R1, buf as i64);
        a.imm(R2, 99);
        a.store(R2, R1, 0);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn spawn_join_and_inter_thread_dep() {
        let p = two_thread_program();
        struct Collect(Vec<LoadEvent>);
        impl Observer for Collect {
            fn on_load(&mut self, ev: &LoadEvent) {
                self.0.push(*ev);
            }
        }
        let mut obs = Collect(Vec::new());
        let mut m = Machine::new(&p, quiet(1));
        let out = m.run_observed(&mut obs);
        assert_eq!(out, RunOutcome::Completed { output: vec![99] });
        assert_eq!(m.stats().threads_spawned, 2);
        let dep = obs.0[0].dep.expect("dep formed across threads");
        assert!(dep.inter_thread);
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        // Two workers each do 200 lock-protected increments of a counter.
        let mut a = Asm::new();
        let counter = a.static_zeroed(1);
        let lockw = a.static_zeroed(1);
        a.func("main");
        let worker = a.new_label();
        a.imm(R2, 0);
        a.spawn(R3, worker, R2);
        a.spawn(R4, worker, R2);
        a.join(R3);
        a.join(R4);
        a.imm(R1, counter as i64);
        a.load(R2, R1, 0);
        a.out(R2);
        a.halt();
        a.func("worker");
        a.bind(worker);
        a.imm(R1, counter as i64);
        a.imm(R4, lockw as i64);
        a.imm(R2, 0); // i
        let top = a.label_here();
        a.lock(R4, 0);
        a.load(R3, R1, 0);
        a.addi(R3, R3, 1);
        a.store(R3, R1, 0);
        a.unlock(R4, 0);
        a.addi(R2, R2, 1);
        a.alui(AluOp::Lt, R3, R2, 200);
        a.bnz(R3, top);
        a.halt();
        let p = a.finish().unwrap();
        // Run with jitter to stress interleavings.
        let cfg = MachineConfig { jitter_ppm: 50_000, seed: 3, ..Default::default() };
        let mut m = Machine::new(&p, cfg);
        assert_eq!(m.run(), RunOutcome::Completed { output: vec![400] });
        assert!(m.stats().lock_acquires >= 400);
    }

    #[test]
    fn unprotected_increments_can_race() {
        // Same as above without locks: under jittered interleaving some
        // increments may be lost. We only assert the run completes and the
        // result never exceeds the correct total.
        let mut a = Asm::new();
        let counter = a.static_zeroed(1);
        a.func("main");
        let worker = a.new_label();
        a.imm(R2, 0);
        a.spawn(R3, worker, R2);
        a.spawn(R4, worker, R2);
        a.join(R3);
        a.join(R4);
        a.imm(R1, counter as i64);
        a.load(R2, R1, 0);
        a.out(R2);
        a.halt();
        a.func("worker");
        a.bind(worker);
        a.imm(R1, counter as i64);
        a.imm(R2, 0);
        let top = a.label_here();
        a.load(R3, R1, 0);
        a.addi(R3, R3, 1);
        a.store(R3, R1, 0);
        a.addi(R2, R2, 1);
        a.alui(AluOp::Lt, R3, R2, 100);
        a.bnz(R3, top);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = MachineConfig { jitter_ppm: 100_000, seed: 5, ..Default::default() };
        let mut m = Machine::new(&p, cfg);
        match m.run() {
            RunOutcome::Completed { output } => {
                assert_eq!(output.len(), 1);
                assert!(output[0] <= 200);
                assert!(output[0] > 0);
            }
            other => panic!("expected completion, got {other}"),
        }
    }

    #[test]
    fn deadlock_is_detected() {
        // Two threads acquire two locks in opposite order with a rendezvous
        // so both hold one lock before requesting the other.
        let mut a = Asm::new();
        let la = a.static_zeroed(1);
        let lb = a.static_zeroed(1);
        let flag = a.static_zeroed(1);
        a.func("main");
        let worker = a.new_label();
        a.imm(R2, 0);
        a.spawn(R3, worker, R2);
        // Main: lock A, wait for worker to hold B, then lock B.
        a.imm(R1, la as i64);
        a.lock(R1, 0);
        a.imm(R4, flag as i64);
        let wait = a.label_here();
        a.load(R2, R4, 0);
        a.bez(R2, wait);
        a.imm(R1, lb as i64);
        a.lock(R1, 0);
        a.halt();
        a.func("worker");
        a.bind(worker);
        a.imm(R1, lb as i64);
        a.lock(R1, 0);
        a.imm(R4, flag as i64);
        a.imm(R2, 1);
        a.store(R2, R4, 0);
        a.imm(R1, la as i64);
        a.lock(R1, 0);
        a.halt();
        let p = a.finish().unwrap();
        let mut m = Machine::new(&p, quiet(0));
        match m.run() {
            RunOutcome::Deadlock { .. } => {}
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn timeout_guard_fires() {
        let mut a = Asm::new();
        a.func("main");
        let spin = a.label_here();
        a.nop();
        a.jump(spin);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = MachineConfig { max_cycles: 5_000, ..quiet(0) };
        let mut m = Machine::new(&p, cfg);
        assert_eq!(m.run(), RunOutcome::Timeout { cycle: 5_000 });
    }

    #[test]
    fn determinism_same_seed_same_cycles() {
        let p = two_thread_program();
        let run = |seed| {
            let mut m = Machine::new(&p, MachineConfig::with_seed(seed));
            let o = m.run();
            (o, m.stats().total_cycles)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn stack_accesses_are_filtered() {
        let mut a = Asm::new();
        a.func("main");
        a.imm(R1, 5);
        a.store(R1, SP, -8);
        a.load(R2, SP, -8);
        a.out(R2);
        a.halt();
        let p = a.finish().unwrap();
        struct Collect(Vec<LoadEvent>);
        impl Observer for Collect {
            fn on_load(&mut self, ev: &LoadEvent) {
                self.0.push(*ev);
            }
        }
        let mut obs = Collect(Vec::new());
        let mut m = Machine::new(&p, quiet(0));
        let out = m.run_observed(&mut obs);
        assert_eq!(out, RunOutcome::Completed { output: vec![5] });
        assert!(obs.0[0].stack_access);
        assert!(obs.0[0].dep.is_none(), "stack loads form no dependences");
    }

    #[test]
    fn attachment_backpressure_stalls_retirement() {
        // An attachment that refuses the first 50 offers forces stall cycles.
        struct Sticky {
            refusals: u32,
        }
        impl CoreAttachment for Sticky {
            fn tick(&mut self, _c: u64) {}
            fn offer_load(&mut self, _ev: &LoadEvent) -> bool {
                if self.refusals > 0 {
                    self.refusals -= 1;
                    false
                } else {
                    true
                }
            }
        }
        let mut a = Asm::new();
        let buf = a.static_zeroed(1);
        a.func("main");
        a.imm(R1, buf as i64);
        a.store(R1, R1, 0);
        a.load(R2, R1, 0);
        a.out(R2);
        a.halt();
        let p = a.finish().unwrap();
        let mut m = Machine::new(&p, quiet(0));
        m.attach(0, Box::new(Sticky { refusals: 50 }));
        let out = m.run();
        assert!(out.completed());
        assert!(m.stats().cores[0].attach_stall_cycles >= 50);
    }

    #[test]
    fn more_threads_than_cores_run_via_pending_queue() {
        // 4 workers on a 2-core machine, each stores its arg, main sums.
        let mut a = Asm::new();
        let buf = a.static_zeroed(4);
        a.func("main");
        let worker = a.new_label();
        let r5 = Reg(5);
        let r6 = Reg(6);
        // Spawn 4 workers with args 0..4.
        for i in 0..4 {
            a.imm(R2, i);
            a.spawn(Reg(10 + i as u8), worker, R2);
        }
        for i in 0..4 {
            a.join(Reg(10 + i as u8));
        }
        a.imm(R1, buf as i64);
        a.imm(r5, 0);
        for i in 0..4 {
            a.load(r6, R1, i * 8);
            a.add(r5, r5, r6);
        }
        a.out(r5);
        a.halt();
        a.func("worker");
        a.bind(worker);
        // r1 = arg i; write i+1 to buf[i].
        a.imm(R2, buf as i64);
        a.alui(AluOp::Mul, R3, R1, 8);
        a.add(R2, R2, R3);
        a.addi(R4, R1, 1);
        a.store(R4, R2, 0);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = MachineConfig { cores: 2, ..quiet(2) };
        let mut m = Machine::new(&p, cfg);
        assert_eq!(m.run(), RunOutcome::Completed { output: vec![10] });
        assert_eq!(m.stats().threads_spawned, 5);
    }
}

#[cfg(test)]
mod preemption_tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::AluOp;

    const R1: Reg = Reg(1);
    const R2: Reg = Reg(2);
    const R3: Reg = Reg(3);
    const R4: Reg = Reg(4);

    /// Thread 0 spins on a flag that only the *last* spawned thread sets.
    /// With more threads than cores and run-to-completion scheduling the
    /// flag-setter never runs (the spinner hogs its core); preemption lets
    /// every thread make progress.
    fn starvation_program(workers: i64) -> Program {
        let mut a = Asm::new();
        let flag = a.static_zeroed(1);
        a.func("main");
        let spinner = a.new_label();
        let setter = a.new_label();
        a.imm(R2, 0);
        a.spawn(Reg(10), spinner, R2);
        a.spawn(Reg(11), setter, R2);
        a.join(Reg(10));
        a.join(Reg(11));
        a.imm(R2, workers);
        a.out(R2);
        a.halt();
        a.func("spinner");
        a.bind(spinner);
        a.imm(R1, flag as i64);
        let top = a.label_here();
        a.load(R3, R1, 0);
        a.bez(R3, top);
        a.halt();
        a.func("setter");
        a.bind(setter);
        a.imm(R1, flag as i64);
        a.imm(R4, 1);
        a.store(R4, R1, 0);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn preemption_prevents_starvation() {
        let p = starvation_program(2);
        // Two cores: main + spinner occupy them; the setter waits forever
        // without preemption.
        let base =
            MachineConfig { cores: 2, jitter_ppm: 0, max_cycles: 400_000, ..Default::default() };
        let starved = Machine::new(&p, base.clone()).run();
        assert_eq!(starved, RunOutcome::Timeout { cycle: 400_000 });

        let cfg = MachineConfig { preemption_quantum: 2_000, ..base };
        let out = Machine::new(&p, cfg).run();
        assert_eq!(out, RunOutcome::Completed { output: vec![2] });
    }

    /// Blocked threads are swapped out immediately when others are waiting,
    /// so lock-heavy oversubscription still completes correctly.
    #[test]
    fn preemption_with_locks_is_correct() {
        let mut a = Asm::new();
        let counter = a.static_zeroed(1);
        let lockw = a.static_zeroed(1);
        a.func("main");
        let worker = a.new_label();
        a.imm(R2, 0);
        for i in 0..4 {
            a.spawn(Reg(10 + i), worker, R2);
        }
        for i in 0..4 {
            a.join(Reg(10 + i));
        }
        a.imm(R1, counter as i64);
        a.load(R2, R1, 0);
        a.out(R2);
        a.halt();
        a.func("worker");
        a.bind(worker);
        a.imm(R1, counter as i64);
        a.imm(R4, lockw as i64);
        a.imm(R2, 0);
        let top = a.label_here();
        a.lock(R4, 0);
        a.load(R3, R1, 0);
        a.addi(R3, R3, 1);
        a.store(R3, R1, 0);
        a.unlock(R4, 0);
        a.addi(R2, R2, 1);
        a.alui(AluOp::Lt, R3, R2, 50);
        a.bnz(R3, top);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = MachineConfig {
            cores: 2,
            jitter_ppm: 20_000,
            preemption_quantum: 1_000,
            seed: 5,
            ..Default::default()
        };
        let out = Machine::new(&p, cfg).run();
        assert_eq!(out, RunOutcome::Completed { output: vec![200] });
    }

    /// Context switches notify the attachment so it can save/restore the
    /// neural network's weight registers (§IV-D).
    #[test]
    fn context_switch_notifies_attachment() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct SwitchLog {
            starts: Vec<ThreadId>,
            ends: Vec<ThreadId>,
        }
        #[derive(Default)]
        struct Tracker(Rc<RefCell<SwitchLog>>);
        impl CoreAttachment for Tracker {
            fn tick(&mut self, _c: u64) {}
            fn offer_load(&mut self, _ev: &LoadEvent) -> bool {
                true
            }
            fn on_thread_start(&mut self, tid: ThreadId) {
                self.0.borrow_mut().starts.push(tid);
            }
            fn on_thread_end(&mut self, tid: ThreadId) {
                self.0.borrow_mut().ends.push(tid);
            }
        }

        let p = starvation_program(2);
        let cfg = MachineConfig {
            cores: 2,
            jitter_ppm: 0,
            preemption_quantum: 1_000,
            ..Default::default()
        };
        let log = Rc::new(RefCell::new(SwitchLog::default()));
        let mut m = Machine::new(&p, cfg);
        for c in 0..2 {
            m.attach(c, Box::new(Tracker(log.clone())));
        }
        assert!(m.run().completed());
        let log = log.borrow();
        // Each scheduling-in has a matching switch-out, and at least one
        // thread was context-switched (scheduled more than once) — here the
        // blocked main thread yields its core to the setter and returns.
        assert_eq!(log.starts.len(), log.ends.len());
        let mut counts = std::collections::HashMap::new();
        for t in &log.starts {
            *counts.entry(*t).or_insert(0) += 1;
        }
        assert!(counts.values().any(|&c| c > 1), "no context switch: {:?}", log.starts);
    }
}

#[cfg(test)]
mod barrier_tests {
    use super::*;
    use crate::asm::Asm;
    use crate::isa::AluOp;

    const R1: Reg = Reg(1);
    const R2: Reg = Reg(2);
    const R3: Reg = Reg(3);

    /// A barrier whose count is never reached deadlocks (and is detected).
    #[test]
    fn unreachable_barrier_deadlocks() {
        let mut a = Asm::new();
        let bar = a.static_data(&[5]); // expects 5, only 1 arrives
        a.func("main");
        a.imm(R1, bar as i64);
        a.barrier(R1, 0);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = MachineConfig { jitter_ppm: 0, ..Default::default() };
        match Machine::new(&p, cfg).run() {
            RunOutcome::Deadlock { .. } => {}
            other => panic!("expected deadlock, got {other}"),
        }
    }

    /// All participants pass a barrier together and every pre-barrier store
    /// is visible after it.
    #[test]
    fn barrier_releases_all_and_orders_memory() {
        let mut a = Asm::new();
        let slots = a.static_zeroed(4);
        let bar = a.static_data(&[4]);
        a.func("main");
        let worker = a.new_label();
        for i in 0..4 {
            a.imm(R2, i);
            a.spawn(Reg(10 + i as u8), worker, R2);
        }
        for i in 0..4 {
            a.join(Reg(10 + i));
        }
        a.imm(R1, slots as i64);
        a.imm(R3, 0);
        for i in 0..4 {
            a.load(R2, R1, i * 8);
            a.add(R3, R3, R2);
        }
        a.out(R3);
        a.halt();
        a.func("worker");
        a.bind(worker);
        a.imm(Reg(20), slots as i64);
        a.imm(Reg(21), bar as i64);
        // slots[w] = w + 1
        a.alui(AluOp::Mul, R2, R1, 8);
        a.alu(AluOp::Add, R2, Reg(20), R2);
        a.addi(R3, R1, 1);
        a.store(R3, R2, 0);
        a.barrier(Reg(21), 0);
        // After the barrier, double the sum of ALL slots into own slot.
        a.imm(Reg(22), 0);
        for i in 0..4 {
            a.load(Reg(23), Reg(20), i * 8);
            a.add(Reg(22), Reg(22), Reg(23));
        }
        // Every worker must have seen 1+2+3+4 = 10.
        a.alui(AluOp::Eq, Reg(23), Reg(22), 10);
        a.assert_nz(Reg(23), 42);
        a.store(Reg(22), R2, 0);
        a.halt();
        let p = a.finish().unwrap();
        for seed in 0..3 {
            let cfg = MachineConfig { jitter_ppm: 20_000, seed, ..Default::default() };
            let out = Machine::new(&p, cfg).run();
            assert_eq!(out, RunOutcome::Completed { output: vec![40] }, "seed {seed}");
        }
    }
}
