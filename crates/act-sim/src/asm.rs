//! A small assembler for building [`Program`]s with forward labels,
//! functions, and a static data segment.
//!
//! # Examples
//!
//! ```
//! use act_sim::asm::Asm;
//! use act_sim::isa::Reg;
//!
//! let mut a = Asm::new();
//! let buf = a.static_zeroed(4); // four zeroed words in the data segment
//! a.func("main");
//! a.imm(Reg(1), buf as i64);
//! a.imm(Reg(2), 42);
//! a.store(Reg(2), Reg(1), 0);
//! a.load(Reg(3), Reg(1), 0);
//! a.out(Reg(3));
//! a.halt();
//! let program = a.finish().unwrap();
//! assert_eq!(program.code_len(), 6);
//! ```

use crate::isa::{AluOp, Instr, Pc, Reg, Word};
use crate::program::{FunctionInfo, Program, ValidateProgramError, DATA_BASE};
use std::collections::BTreeMap;

/// An unresolved jump target handed out by [`Asm::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Incremental builder for [`Program`]s.
///
/// Labels may be referenced before they are bound; [`Asm::finish`] patches
/// all uses and fails if any label was never bound.
#[derive(Debug, Default)]
pub struct Asm {
    instrs: Vec<Instr>,
    labels: Vec<Option<Pc>>,
    /// (instruction index, label) pairs whose target needs patching.
    fixups: Vec<(usize, Label)>,
    functions: Vec<FunctionInfo>,
    open_function: Option<(String, Pc)>,
    data: Vec<Word>,
    named: BTreeMap<Pc, String>,
    entry: Pc,
}

/// Error produced by [`Asm::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(usize),
    /// The assembled program failed [`Program::validate`].
    Invalid(ValidateProgramError),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnboundLabel(i) => write!(f, "label {i} was never bound"),
            AsmError::Invalid(e) => write!(f, "assembled program is invalid: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl Asm {
    /// Create an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction index (the pc the next emitted instruction gets).
    pub fn here(&self) -> Pc {
        self.instrs.len() as Pc
    }

    /// Allocate a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (a builder bug in the caller).
    pub fn bind(&mut self, label: Label) {
        let here = self.here();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(here);
    }

    /// Convenience: allocate a label already bound to the current position.
    pub fn label_here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Begin a new function at the current position, closing any open one.
    pub fn func(&mut self, name: &str) -> Pc {
        self.close_function();
        let start = self.here();
        self.open_function = Some((name.to_string(), start));
        start
    }

    /// Attach a symbolic name to the *next* emitted instruction
    /// (used as ground truth for bug signatures in diagnosis reports).
    pub fn mark(&mut self, name: &str) -> Pc {
        let pc = self.here();
        self.named.insert(pc, name.to_string());
        pc
    }

    /// The pc a previously emitted `mark` resolved to, if any.
    pub fn marked(&self, name: &str) -> Option<Pc> {
        self.named.iter().find(|(_, n)| n.as_str() == name).map(|(pc, _)| *pc)
    }

    /// Append `values` to the data segment, returning their base byte address.
    pub fn static_data(&mut self, values: &[Word]) -> u64 {
        let addr = DATA_BASE + (self.data.len() as u64) * crate::isa::WORD_BYTES;
        self.data.extend_from_slice(values);
        addr
    }

    /// Append `words` zeroed words to the data segment, returning their base
    /// byte address.
    pub fn static_zeroed(&mut self, words: usize) -> u64 {
        self.static_data(&vec![0; words])
    }

    /// Set the entry point (defaults to pc 0).
    pub fn entry(&mut self, pc: Pc) {
        self.entry = pc;
    }

    fn close_function(&mut self) {
        if let Some((name, start)) = self.open_function.take() {
            let end = self.here();
            if end > start {
                self.functions.push(FunctionInfo { name, start, end });
            }
        }
    }

    fn push(&mut self, i: Instr) -> Pc {
        let pc = self.here();
        self.instrs.push(i);
        pc
    }

    // ---- instruction emitters ------------------------------------------

    /// `rd <- value`
    pub fn imm(&mut self, rd: Reg, value: Word) -> Pc {
        self.push(Instr::Imm { rd, value })
    }

    /// `rd <- ra op rb`
    pub fn alu(&mut self, op: AluOp, rd: Reg, ra: Reg, rb: Reg) -> Pc {
        self.push(Instr::Alu { op, rd, ra, rb })
    }

    /// `rd <- ra op imm`
    pub fn alui(&mut self, op: AluOp, rd: Reg, ra: Reg, imm: Word) -> Pc {
        self.push(Instr::AluI { op, rd, ra, imm })
    }

    /// `rd <- ra + rb`
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: Reg) -> Pc {
        self.alu(AluOp::Add, rd, ra, rb)
    }

    /// `rd <- ra + imm`
    pub fn addi(&mut self, rd: Reg, ra: Reg, imm: Word) -> Pc {
        self.alui(AluOp::Add, rd, ra, imm)
    }

    /// `rd <- ra * rb`
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: Reg) -> Pc {
        self.alu(AluOp::Mul, rd, ra, rb)
    }

    /// `rd <- mem[base + offset]`
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64) -> Pc {
        self.push(Instr::Load { rd, base, offset })
    }

    /// `mem[base + offset] <- rs`
    pub fn store(&mut self, rs: Reg, base: Reg, offset: i64) -> Pc {
        self.push(Instr::Store { rs, base, offset })
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> Pc {
        let pc = self.push(Instr::Jump { target: 0 });
        self.fixups.push((pc as usize, label));
        pc
    }

    /// Branch to `label` if `cond != 0`.
    pub fn bnz(&mut self, cond: Reg, label: Label) -> Pc {
        let pc = self.push(Instr::Bnz { cond, target: 0 });
        self.fixups.push((pc as usize, label));
        pc
    }

    /// Branch to `label` if `cond == 0`.
    pub fn bez(&mut self, cond: Reg, label: Label) -> Pc {
        let pc = self.push(Instr::Bez { cond, target: 0 });
        self.fixups.push((pc as usize, label));
        pc
    }

    /// Spawn a thread at `entry` with `arg`'s value in its `r1`; thread id in `rd`.
    pub fn spawn(&mut self, rd: Reg, entry: Label, arg: Reg) -> Pc {
        let pc = self.push(Instr::Spawn { rd, entry: 0, arg });
        self.fixups.push((pc as usize, entry));
        pc
    }

    /// Block until thread `tid` halts.
    pub fn join(&mut self, tid: Reg) -> Pc {
        self.push(Instr::Join { tid })
    }

    /// Acquire the lock at `[base + offset]`.
    pub fn lock(&mut self, base: Reg, offset: i64) -> Pc {
        self.push(Instr::Lock { base, offset })
    }

    /// Release the lock at `[base + offset]`.
    pub fn unlock(&mut self, base: Reg, offset: i64) -> Pc {
        self.push(Instr::Unlock { base, offset })
    }

    /// Memory fence.
    pub fn fence(&mut self) -> Pc {
        self.push(Instr::Fence)
    }

    /// Barrier on the word at `[base + offset]` (which holds the expected
    /// participant count).
    pub fn barrier(&mut self, base: Reg, offset: i64) -> Pc {
        self.push(Instr::Barrier { base, offset })
    }

    /// Emit `rs` to the program output stream.
    pub fn out(&mut self, rs: Reg) -> Pc {
        self.push(Instr::Out { rs })
    }

    /// Crash with `code` if `cond == 0`.
    pub fn assert_nz(&mut self, cond: Reg, code: u32) -> Pc {
        self.push(Instr::Assert { cond, code })
    }

    /// Terminate the executing thread.
    pub fn halt(&mut self) -> Pc {
        self.push(Instr::Halt)
    }

    /// One cycle of timing padding.
    pub fn nop(&mut self) -> Pc {
        self.push(Instr::Nop)
    }

    /// `count` cycles of timing padding.
    pub fn nops(&mut self, count: usize) {
        for _ in 0..count {
            self.nop();
        }
    }

    // ---- finish ---------------------------------------------------------

    /// Resolve labels, close the open function, validate, and produce the
    /// [`Program`].
    ///
    /// # Errors
    ///
    /// Fails if any referenced label was never bound, or if the assembled
    /// program does not pass [`Program::validate`].
    pub fn finish(mut self) -> Result<Program, AsmError> {
        self.close_function();
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0].ok_or(AsmError::UnboundLabel(label.0))?;
            match &mut self.instrs[idx] {
                Instr::Jump { target: t }
                | Instr::Bnz { target: t, .. }
                | Instr::Bez { target: t, .. }
                | Instr::Spawn { entry: t, .. } => *t = target,
                other => unreachable!("fixup on non-control instruction {other}"),
            }
        }
        let program = Program {
            instrs: self.instrs,
            entry: self.entry,
            data: self.data,
            functions: self.functions,
            labels: self.named,
        };
        program.validate().map_err(AsmError::Invalid)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::ZERO;

    const R1: Reg = Reg(1);
    const R2: Reg = Reg(2);

    #[test]
    fn forward_label_is_patched() {
        let mut a = Asm::new();
        a.func("main");
        let end = a.new_label();
        a.imm(R1, 1);
        a.bnz(R1, end);
        a.imm(R2, 99); // skipped
        a.bind(end);
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.instrs[1], Instr::Bnz { cond: R1, target: 3 });
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.jump(l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn data_segment_addresses_are_sequential_words() {
        let mut a = Asm::new();
        let x = a.static_data(&[1, 2]);
        let y = a.static_zeroed(3);
        assert_eq!(x, DATA_BASE);
        assert_eq!(y, DATA_BASE + 16);
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.data, vec![1, 2, 0, 0, 0]);
    }

    #[test]
    fn functions_are_closed_by_next_func_and_finish() {
        let mut a = Asm::new();
        a.func("f");
        a.nop();
        a.nop();
        a.func("g");
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].name, "f");
        assert_eq!((p.functions[0].start, p.functions[0].end), (0, 2));
        assert_eq!((p.functions[1].start, p.functions[1].end), (2, 3));
    }

    #[test]
    fn mark_records_named_pcs() {
        let mut a = Asm::new();
        a.func("main");
        a.nop();
        let pc = a.mark("S1");
        a.store(ZERO, R1, 0);
        a.halt();
        assert_eq!(pc, 1);
        assert_eq!(a.marked("S1"), Some(1));
        let p = a.finish().unwrap();
        assert_eq!(p.describe_pc(1), "S1");
    }

    #[test]
    fn finish_validates() {
        let mut a = Asm::new();
        a.load(R1, R2, 3); // misaligned
        a.halt();
        assert!(matches!(a.finish(), Err(AsmError::Invalid(_))));
    }
}
