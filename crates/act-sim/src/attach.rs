//! Extension points: per-core attachments (the ACT module plugs in here)
//! and passive observers (trace collectors, baselines).

use crate::events::{BranchEvent, LoadEvent, StoreEvent, ThreadId};

/// A hardware module tightly integrated with a core, able to exert
/// back-pressure on load retirement — the integration point for the paper's
/// per-processor ACT Module (AM).
///
/// The machine calls [`CoreAttachment::offer_load`] when a load reaches the
/// retirement stage. Returning `false` stalls the load (and everything behind
/// it in the ROB) for this cycle; the machine re-offers it every cycle until
/// accepted. This models the paper's rule that a load may only retire once
/// the neural network's input FIFO has accepted its RAW dependence.
pub trait CoreAttachment {
    /// Advance the attachment's internal clock to `cycle`. Called once per
    /// machine cycle, before any retirement on this core.
    fn tick(&mut self, cycle: u64);

    /// Offer a retiring load. Return `true` to let it retire, `false` to
    /// stall it this cycle.
    fn offer_load(&mut self, ev: &LoadEvent) -> bool;

    /// A store dispatched on this core.
    fn on_store(&mut self, _ev: &StoreEvent) {}

    /// A thread started running on this core (context switch-in). The
    /// attachment should load that thread's neural-network weights.
    fn on_thread_start(&mut self, _tid: ThreadId) {}

    /// The thread running on this core halted (context switch-out). The
    /// attachment should save its weights.
    fn on_thread_end(&mut self, _tid: ThreadId) {}
}

/// A no-op attachment: loads always retire immediately (machine without ACT).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullAttachment;

impl CoreAttachment for NullAttachment {
    fn tick(&mut self, _cycle: u64) {}

    fn offer_load(&mut self, _ev: &LoadEvent) -> bool {
        true
    }
}

/// Shared-ownership adapter: lets a caller keep a handle to an attachment
/// (to read its debug buffer after the run) while the machine drives it.
impl<T: CoreAttachment> CoreAttachment for std::rc::Rc<std::cell::RefCell<T>> {
    fn tick(&mut self, cycle: u64) {
        self.borrow_mut().tick(cycle);
    }

    fn offer_load(&mut self, ev: &LoadEvent) -> bool {
        self.borrow_mut().offer_load(ev)
    }

    fn on_store(&mut self, ev: &StoreEvent) {
        self.borrow_mut().on_store(ev);
    }

    fn on_thread_start(&mut self, tid: ThreadId) {
        self.borrow_mut().on_thread_start(tid);
    }

    fn on_thread_end(&mut self, tid: ThreadId) {
        self.borrow_mut().on_thread_end(tid);
    }
}

/// A passive, machine-wide observer of retired events. Unlike
/// [`CoreAttachment`], observers cannot influence timing.
pub trait Observer {
    /// A load retired.
    fn on_load(&mut self, _ev: &LoadEvent) {}
    /// A store retired.
    fn on_store(&mut self, _ev: &StoreEvent) {}
    /// A conditional branch resolved.
    fn on_branch(&mut self, _ev: &BranchEvent) {}
    /// A thread was created (`tid`) at `cycle`.
    fn on_thread_start(&mut self, _tid: ThreadId, _cycle: u64) {}
    /// A thread halted.
    fn on_thread_end(&mut self, _tid: ThreadId, _cycle: u64) {}
}

/// An observer that discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CacheEvent;

    #[test]
    fn null_attachment_never_stalls() {
        let mut a = NullAttachment;
        let ev = LoadEvent {
            cycle: 0,
            core: 0,
            tid: 0,
            pc: 0,
            addr: 0x2000,
            cache_event: CacheEvent::L1Hit,
            dep: None,
            stack_access: false,
        };
        a.tick(5);
        assert!(a.offer_load(&ev));
    }
}
