//! Execution statistics: cycles, instruction mix, cache/bus behaviour, and
//! attachment-induced stalls. The overhead experiment (Fig 8) compares
//! `total_cycles` of runs with and without the ACT module attached.

/// Per-core counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Cycles a retirement-ready load was stalled by the core attachment
    /// (the NN input FIFO being full, in ACT's case).
    pub attach_stall_cycles: u64,
    /// Cycles dispatch was blocked because the ROB was full.
    pub rob_full_cycles: u64,
    /// Cycles the core had a runnable thread.
    pub busy_cycles: u64,
}

/// Memory-system counters (machine-wide).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses that hit in the local L2.
    pub l2_hits: u64,
    /// Misses serviced by a dirty cache-to-cache transfer.
    pub cache_to_cache: u64,
    /// Misses serviced from main memory.
    pub mem_fills: u64,
    /// Bus transactions issued.
    pub bus_transactions: u64,
    /// Lines written back from L2 to memory.
    pub writebacks: u64,
    /// Loads whose last-writer metadata was available (a RAW dep formed).
    pub deps_formed: u64,
    /// Loads whose last-writer metadata was unavailable.
    pub deps_missing: u64,
}

/// Machine-wide statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total cycles simulated.
    pub total_cycles: u64,
    /// Per-core counters.
    pub cores: Vec<CoreStats>,
    /// Memory-system counters.
    pub mem: MemStats,
    /// Threads spawned (including main).
    pub threads_spawned: u64,
    /// Lock acquisitions.
    pub lock_acquires: u64,
}

impl Stats {
    /// New statistics block for `cores` cores.
    pub fn new(cores: usize) -> Self {
        Stats { cores: vec![CoreStats::default(); cores], ..Default::default() }
    }

    /// Total instructions retired across all cores.
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.retired).sum()
    }

    /// Total loads retired across all cores.
    pub fn total_loads(&self) -> u64 {
        self.cores.iter().map(|c| c.loads).sum()
    }

    /// Total attachment-induced stall cycles across all cores.
    pub fn total_attach_stalls(&self) -> u64 {
        self.cores.iter().map(|c| c.attach_stall_cycles).sum()
    }

    /// Fraction of loads that formed a RAW dependence.
    pub fn dep_coverage(&self) -> f64 {
        let total = self.mem.deps_formed + self.mem.deps_missing;
        if total == 0 {
            0.0
        } else {
            self.mem.deps_formed as f64 / total as f64
        }
    }

    /// Export every counter as one [`MetricsSnapshot`](act_obs::MetricsSnapshot)
    /// — machine-wide totals plus `core{i}_*` per-core entries — so
    /// simulator stats serialize and render through the same type as
    /// serve/fleet/module metrics. The simulator keeps its plain-field
    /// counters on the hot path; this copies them out on demand.
    pub fn metrics_snapshot(&self) -> act_obs::MetricsSnapshot {
        let mut snap = act_obs::MetricsSnapshot::new();
        snap.push_counter("total_cycles", self.total_cycles);
        snap.push_counter("threads_spawned", self.threads_spawned);
        snap.push_counter("lock_acquires", self.lock_acquires);
        snap.push_counter("retired", self.total_retired());
        snap.push_counter("loads", self.total_loads());
        snap.push_counter("attach_stall_cycles", self.total_attach_stalls());
        snap.push_counter("l1_hits", self.mem.l1_hits);
        snap.push_counter("l2_hits", self.mem.l2_hits);
        snap.push_counter("cache_to_cache", self.mem.cache_to_cache);
        snap.push_counter("mem_fills", self.mem.mem_fills);
        snap.push_counter("bus_transactions", self.mem.bus_transactions);
        snap.push_counter("writebacks", self.mem.writebacks);
        snap.push_counter("deps_formed", self.mem.deps_formed);
        snap.push_counter("deps_missing", self.mem.deps_missing);
        snap.push_gauge("dep_coverage_ppm", (self.dep_coverage() * 1e6) as i64);
        for (i, core) in self.cores.iter().enumerate() {
            snap.push_counter(&format!("core{i}_retired"), core.retired);
            snap.push_counter(&format!("core{i}_loads"), core.loads);
            snap.push_counter(&format!("core{i}_stores"), core.stores);
            snap.push_counter(&format!("core{i}_branches"), core.branches);
            snap.push_counter(&format!("core{i}_attach_stall_cycles"), core.attach_stall_cycles);
            snap.push_counter(&format!("core{i}_rob_full_cycles"), core.rob_full_cycles);
            snap.push_counter(&format!("core{i}_busy_cycles"), core.busy_cycles);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let mut s = Stats::new(2);
        s.cores[0].retired = 10;
        s.cores[1].retired = 5;
        s.cores[0].loads = 4;
        s.cores[1].attach_stall_cycles = 7;
        assert_eq!(s.total_retired(), 15);
        assert_eq!(s.total_loads(), 4);
        assert_eq!(s.total_attach_stalls(), 7);
    }

    #[test]
    fn metrics_snapshot_round_trips() {
        let mut s = Stats::new(2);
        s.total_cycles = 1234;
        s.cores[1].retired = 7;
        s.mem.deps_formed = 3;
        s.mem.deps_missing = 1;
        let snap = s.metrics_snapshot();
        assert_eq!(snap.counter("total_cycles"), Some(1234));
        assert_eq!(snap.counter("core1_retired"), Some(7));
        assert_eq!(snap.gauge("dep_coverage_ppm"), Some(750_000));
        let bytes = snap.to_bytes();
        assert_eq!(act_obs::MetricsSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn dep_coverage_handles_zero() {
        let s = Stats::new(1);
        assert_eq!(s.dep_coverage(), 0.0);
        let mut s = Stats::new(1);
        s.mem.deps_formed = 3;
        s.mem.deps_missing = 1;
        assert!((s.dep_coverage() - 0.75).abs() < 1e-12);
    }
}
