//! Program representation: instructions, function map, and static data.

use crate::isa::{Addr, Instr, Pc, Word};
use std::collections::BTreeMap;
use std::fmt;

/// Base byte address of the static data segment.
pub const DATA_BASE: Addr = 0x1000;

/// Base byte address of the per-thread stack area.
pub const STACK_BASE: Addr = 0x1000_0000;

/// Bytes of stack reserved per thread.
pub const STACK_SIZE: u64 = 64 * 1024;

/// A contiguous range of instructions with a symbolic name.
///
/// Functions matter for two experiments: Table VI injects bugs into *new*
/// functions absent from training traces, and Fig 7(b) measures how well the
/// network generalizes to a function it never saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionInfo {
    /// Symbolic name, e.g. `"compute_densities"`.
    pub name: String,
    /// First instruction of the function.
    pub start: Pc,
    /// One past the last instruction of the function.
    pub end: Pc,
}

impl FunctionInfo {
    /// Whether `pc` falls inside this function.
    pub fn contains(&self, pc: Pc) -> bool {
        pc >= self.start && pc < self.end
    }
}

/// An executable program for the simulator.
///
/// Built with [`crate::asm::Asm`]; validated on construction so the machine
/// can assume all jump targets and register indices are in range.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The instruction array; a [`Pc`] is an index into it.
    pub instrs: Vec<Instr>,
    /// Entry point of the main thread.
    pub entry: Pc,
    /// Initial contents of the data segment, starting at [`DATA_BASE`].
    /// One entry per word; unlisted words are zero.
    pub data: Vec<Word>,
    /// Function table, sorted by start pc, non-overlapping.
    pub functions: Vec<FunctionInfo>,
    /// Named labels (for diagnosis reports), pc -> name.
    pub labels: BTreeMap<Pc, String>,
}

/// Error returned when a program fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// A control-flow target points outside the instruction array.
    TargetOutOfRange { pc: Pc, target: Pc },
    /// The entry point is outside the instruction array.
    EntryOutOfRange { entry: Pc },
    /// A register index is >= `NUM_REGS`.
    BadRegister { pc: Pc },
    /// A memory offset is not word-aligned.
    MisalignedOffset { pc: Pc, offset: i64 },
    /// The program has no instructions.
    Empty,
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::TargetOutOfRange { pc, target } => {
                write!(f, "instruction {pc} targets out-of-range pc {target}")
            }
            ValidateProgramError::EntryOutOfRange { entry } => {
                write!(f, "entry point {entry} is out of range")
            }
            ValidateProgramError::BadRegister { pc } => {
                write!(f, "instruction {pc} names an out-of-range register")
            }
            ValidateProgramError::MisalignedOffset { pc, offset } => {
                write!(f, "instruction {pc} has misaligned memory offset {offset}")
            }
            ValidateProgramError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for ValidateProgramError {}

impl Program {
    /// Number of instructions (the "code length" used to normalize PCs for
    /// the neural-network input encoding).
    pub fn code_len(&self) -> usize {
        self.instrs.len()
    }

    /// The function containing `pc`, if any.
    pub fn function_of(&self, pc: Pc) -> Option<&FunctionInfo> {
        self.functions.iter().find(|f| f.contains(pc))
    }

    /// The symbolic name for `pc`: its label if present, else
    /// `function+offset`, else the raw pc.
    pub fn describe_pc(&self, pc: Pc) -> String {
        if let Some(name) = self.labels.get(&pc) {
            return name.clone();
        }
        if let Some(func) = self.function_of(pc) {
            return format!("{}+{}", func.name, pc - func.start);
        }
        format!("pc{pc}")
    }

    /// Validate structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateProgramError`] found: out-of-range branch
    /// target or entry point, bad register index, or misaligned memory offset.
    pub fn validate(&self) -> Result<(), ValidateProgramError> {
        use crate::isa::{Reg, NUM_REGS, WORD_BYTES};
        if self.instrs.is_empty() {
            return Err(ValidateProgramError::Empty);
        }
        let len = self.instrs.len() as Pc;
        if self.entry >= len {
            return Err(ValidateProgramError::EntryOutOfRange { entry: self.entry });
        }
        let check_reg = |pc: Pc, r: Reg| -> Result<(), ValidateProgramError> {
            if (r.0 as usize) < NUM_REGS {
                Ok(())
            } else {
                Err(ValidateProgramError::BadRegister { pc })
            }
        };
        let check_target = |pc: Pc, t: Pc| -> Result<(), ValidateProgramError> {
            if t < len {
                Ok(())
            } else {
                Err(ValidateProgramError::TargetOutOfRange { pc, target: t })
            }
        };
        let check_off = |pc: Pc, off: i64| -> Result<(), ValidateProgramError> {
            if off % WORD_BYTES as i64 == 0 {
                Ok(())
            } else {
                Err(ValidateProgramError::MisalignedOffset { pc, offset: off })
            }
        };
        for (i, ins) in self.instrs.iter().enumerate() {
            let pc = i as Pc;
            match *ins {
                Instr::Imm { rd, .. } => check_reg(pc, rd)?,
                Instr::Alu { rd, ra, rb, .. } => {
                    check_reg(pc, rd)?;
                    check_reg(pc, ra)?;
                    check_reg(pc, rb)?;
                }
                Instr::AluI { rd, ra, .. } => {
                    check_reg(pc, rd)?;
                    check_reg(pc, ra)?;
                }
                Instr::Load { rd, base, offset } => {
                    check_reg(pc, rd)?;
                    check_reg(pc, base)?;
                    check_off(pc, offset)?;
                }
                Instr::Store { rs, base, offset } => {
                    check_reg(pc, rs)?;
                    check_reg(pc, base)?;
                    check_off(pc, offset)?;
                }
                Instr::Jump { target } => check_target(pc, target)?,
                Instr::Bnz { cond, target } | Instr::Bez { cond, target } => {
                    check_reg(pc, cond)?;
                    check_target(pc, target)?;
                }
                Instr::Spawn { rd, entry, arg } => {
                    check_reg(pc, rd)?;
                    check_reg(pc, arg)?;
                    check_target(pc, entry)?;
                }
                Instr::Join { tid } => check_reg(pc, tid)?,
                Instr::Lock { base, offset }
                | Instr::Unlock { base, offset }
                | Instr::Barrier { base, offset } => {
                    check_reg(pc, base)?;
                    check_off(pc, offset)?;
                }
                Instr::Out { rs } => check_reg(pc, rs)?,
                Instr::Assert { cond, .. } => check_reg(pc, cond)?,
                Instr::Fence | Instr::Halt | Instr::Nop => {}
            }
        }
        Ok(())
    }

    /// Pretty-print the program as assembler-like text (for debugging and
    /// diagnosis reports).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, ins) in self.instrs.iter().enumerate() {
            let pc = i as Pc;
            if let Some(func) = self.functions.iter().find(|f| f.start == pc) {
                out.push_str(&format!("{}:\n", func.name));
            }
            if let Some(label) = self.labels.get(&pc) {
                out.push_str(&format!("  .{label}:\n"));
            }
            out.push_str(&format!("  {pc:5}  {ins}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    fn tiny() -> Program {
        Program {
            instrs: vec![
                Instr::Imm { rd: Reg(1), value: 7 },
                Instr::Out { rs: Reg(1) },
                Instr::Halt,
            ],
            entry: 0,
            data: vec![],
            functions: vec![FunctionInfo { name: "main".into(), start: 0, end: 3 }],
            labels: BTreeMap::new(),
        }
    }

    #[test]
    fn validate_ok() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty() {
        let p = Program::default();
        assert_eq!(p.validate(), Err(ValidateProgramError::Empty));
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut p = tiny();
        p.instrs.push(Instr::Jump { target: 99 });
        assert_eq!(p.validate(), Err(ValidateProgramError::TargetOutOfRange { pc: 3, target: 99 }));
    }

    #[test]
    fn validate_rejects_bad_register() {
        let mut p = tiny();
        p.instrs[0] = Instr::Imm { rd: Reg(32), value: 0 };
        assert_eq!(p.validate(), Err(ValidateProgramError::BadRegister { pc: 0 }));
    }

    #[test]
    fn validate_rejects_misaligned_offset() {
        let mut p = tiny();
        p.instrs[0] = Instr::Load { rd: Reg(1), base: Reg(2), offset: 3 };
        assert_eq!(p.validate(), Err(ValidateProgramError::MisalignedOffset { pc: 0, offset: 3 }));
    }

    #[test]
    fn validate_rejects_bad_entry() {
        let mut p = tiny();
        p.entry = 10;
        assert_eq!(p.validate(), Err(ValidateProgramError::EntryOutOfRange { entry: 10 }));
    }

    #[test]
    fn function_lookup_and_pc_description() {
        let p = tiny();
        assert_eq!(p.function_of(1).unwrap().name, "main");
        assert!(p.function_of(5).is_none());
        assert_eq!(p.describe_pc(1), "main+1");
        assert_eq!(p.describe_pc(77), "pc77");
    }

    #[test]
    fn disassemble_contains_function_header() {
        let text = tiny().disassemble();
        assert!(text.contains("main:"));
        assert!(text.contains("halt"));
    }
}
