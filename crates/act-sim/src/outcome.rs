//! Run outcomes and crash kinds.

use crate::events::ThreadId;
use crate::isa::{Pc, Word};
use std::fmt;

/// Why a run crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashKind {
    /// Load or store through a (near-)null pointer.
    NullDeref,
    /// Load or store outside every mapped region.
    OutOfBounds,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// An `assert` instruction failed; the code identifies which.
    AssertFailed(u32),
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashKind::NullDeref => f.write_str("null dereference"),
            CrashKind::OutOfBounds => f.write_str("out-of-bounds access"),
            CrashKind::DivideByZero => f.write_str("divide by zero"),
            CrashKind::AssertFailed(c) => write!(f, "assertion {c} failed"),
        }
    }
}

/// The result of simulating a program to completion (or failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// All threads halted; `output` is the values emitted by `out`
    /// instructions in retirement order.
    Completed {
        /// Values emitted by `out` instructions.
        output: Vec<Word>,
    },
    /// A thread crashed.
    Crash {
        /// What went wrong.
        kind: CrashKind,
        /// Instruction address of the faulting instruction.
        pc: Pc,
        /// Thread that crashed.
        tid: ThreadId,
        /// Cycle of the crash.
        cycle: u64,
        /// Output emitted before the crash.
        output: Vec<Word>,
    },
    /// Every live thread is blocked (locks/joins) and none can make progress.
    Deadlock {
        /// Cycle at which deadlock was detected.
        cycle: u64,
    },
    /// The configured `max_cycles` safety limit was reached.
    Timeout {
        /// The cycle limit that was hit.
        cycle: u64,
    },
}

impl RunOutcome {
    /// Whether the run ran to completion (regardless of output correctness).
    pub fn completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }

    /// The output stream, if the run completed or crashed mid-way.
    pub fn output(&self) -> Option<&[Word]> {
        match self {
            RunOutcome::Completed { output } | RunOutcome::Crash { output, .. } => Some(output),
            _ => None,
        }
    }

    /// Short human-readable status, e.g. for experiment tables.
    pub fn status(&self) -> &'static str {
        match self {
            RunOutcome::Completed { .. } => "completed",
            RunOutcome::Crash { .. } => "crash",
            RunOutcome::Deadlock { .. } => "deadlock",
            RunOutcome::Timeout { .. } => "timeout",
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed { output } => {
                write!(f, "completed with {} output values", output.len())
            }
            RunOutcome::Crash { kind, pc, tid, cycle, .. } => {
                write!(f, "crash ({kind}) at pc {pc} in thread {tid}, cycle {cycle}")
            }
            RunOutcome::Deadlock { cycle } => write!(f, "deadlock at cycle {cycle}"),
            RunOutcome::Timeout { cycle } => write!(f, "timeout at cycle {cycle}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let ok = RunOutcome::Completed { output: vec![1, 2] };
        assert!(ok.completed());
        assert_eq!(ok.output(), Some(&[1, 2][..]));
        assert_eq!(ok.status(), "completed");

        let crash = RunOutcome::Crash {
            kind: CrashKind::NullDeref,
            pc: 4,
            tid: 1,
            cycle: 100,
            output: vec![7],
        };
        assert!(!crash.completed());
        assert_eq!(crash.output(), Some(&[7][..]));
        assert_eq!(crash.status(), "crash");
        assert!(crash.to_string().contains("null dereference"));

        assert_eq!(RunOutcome::Deadlock { cycle: 5 }.output(), None);
        assert_eq!(RunOutcome::Timeout { cycle: 5 }.status(), "timeout");
    }
}
