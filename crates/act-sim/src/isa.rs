//! The mini instruction set interpreted by the simulator.
//!
//! Workloads are expressed in a small assembler-level IR rather than a real
//! binary format: the paper's evaluation instruments native x86 binaries with
//! PIN, which is unavailable here, so programs are built with [`crate::asm::Asm`]
//! and executed by [`crate::machine::Machine`]. Every instruction has a
//! *program counter* (its index in [`crate::program::Program::instrs`]), which
//! plays the role of the instruction address in RAW dependences.

use std::fmt;

/// A register name, `r0`..`r31`.
///
/// `r0` always reads as zero (writes are ignored), mirroring RISC conventions.
/// Registers [`SP`] and [`FP`] are the stack/frame pointers: loads and stores
/// whose base register is one of these are filtered from RAW-dependence
/// tracking, as in the paper (§V, "Filtering of Loads").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

/// Number of architectural registers per thread.
pub const NUM_REGS: usize = 32;

/// The always-zero register.
pub const ZERO: Reg = Reg(0);
/// Stack pointer register (accesses through it are filtered from tracking).
pub const SP: Reg = Reg(30);
/// Frame pointer register (accesses through it are filtered from tracking).
pub const FP: Reg = Reg(29);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SP => write!(f, "sp"),
            FP => write!(f, "fp"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

/// An instruction address: index into the program's instruction array.
pub type Pc = u32;

/// A byte address in the simulated flat address space.
pub type Addr = u64;

/// The machine word type. All registers and memory words hold an `i64`.
pub type Word = i64;

/// Width of a memory word in bytes. All loads/stores are word-sized and
/// word-aligned (the assembler scales offsets accordingly).
pub const WORD_BYTES: u64 = 8;

/// Binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    /// Signed division. Dividing by zero is a [`crate::outcome::CrashKind::DivideByZero`] crash.
    Div,
    /// Signed remainder. Remainder by zero crashes like [`AluOp::Div`].
    Rem,
    And,
    Or,
    Xor,
    /// Logical shift left (shift amount masked to 0..64).
    Shl,
    /// Arithmetic shift right (shift amount masked to 0..64).
    Shr,
    /// Set to 1 if `a < b` (signed), else 0.
    Lt,
    /// Set to 1 if `a <= b` (signed), else 0.
    Le,
    /// Set to 1 if `a == b`, else 0.
    Eq,
    /// Set to 1 if `a != b`, else 0.
    Ne,
    /// Minimum (signed).
    Min,
    /// Maximum (signed).
    Max,
}

impl AluOp {
    /// Apply the operation to two operand values.
    ///
    /// Returns `None` for division/remainder by zero.
    pub fn apply(self, a: Word, b: Word) -> Option<Word> {
        Some(match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            AluOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Lt => (a < b) as Word,
            AluOp::Le => (a <= b) as Word,
            AluOp::Eq => (a == b) as Word,
            AluOp::Ne => (a != b) as Word,
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
        })
    }

    /// Execution latency in cycles for the timing model.
    pub fn latency(self) -> u64 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 12,
            _ => 1,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Lt => "slt",
            AluOp::Le => "sle",
            AluOp::Eq => "seq",
            AluOp::Ne => "sne",
            AluOp::Min => "min",
            AluOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// One instruction of the mini-ISA.
///
/// Control flow is expressed with absolute instruction indices (`Pc`); the
/// assembler resolves labels to these. Memory operands are
/// `[base + offset]` where `offset` is a byte displacement that must be
/// word-aligned.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `rd <- imm`
    Imm { rd: Reg, value: Word },
    /// `rd <- ra op rb`
    Alu { op: AluOp, rd: Reg, ra: Reg, rb: Reg },
    /// `rd <- ra op imm`
    AluI { op: AluOp, rd: Reg, ra: Reg, imm: Word },
    /// `rd <- mem[ra + offset]`
    Load { rd: Reg, base: Reg, offset: i64 },
    /// `mem[ra + offset] <- rs`
    Store { rs: Reg, base: Reg, offset: i64 },
    /// Unconditional jump.
    Jump { target: Pc },
    /// Branch to `target` if `cond != 0`.
    Bnz { cond: Reg, target: Pc },
    /// Branch to `target` if `cond == 0`.
    Bez { cond: Reg, target: Pc },
    /// Spawn a new thread starting at `entry` with `arg`'s value in its `r1`;
    /// the new thread's id is written to `rd`.
    Spawn { rd: Reg, entry: Pc, arg: Reg },
    /// Block until the thread whose id is in `tid` has halted.
    Join { tid: Reg },
    /// Acquire the lock at address `ra + offset` (blocking).
    Lock { base: Reg, offset: i64 },
    /// Release the lock at address `ra + offset`.
    Unlock { base: Reg, offset: i64 },
    /// Memory fence. In this simulator it only drains the ROB (all simulated
    /// memory is sequentially consistent), but it still consumes a slot so
    /// workloads can model synchronization cost.
    Fence,
    /// Block until the number of threads stored at `[base + offset]` have
    /// all arrived at a barrier on that address, then release them together.
    Barrier {
        /// Base register of the barrier word.
        base: Reg,
        /// Byte offset of the barrier word.
        offset: i64,
    },
    /// Append the value of `rs` to the program output stream.
    Out { rs: Reg },
    /// Crash with [`crate::outcome::CrashKind::AssertFailed`] if `cond == 0`.
    Assert { cond: Reg, code: u32 },
    /// Terminate the executing thread.
    Halt,
    /// No operation (1 cycle). Used as timing padding in workloads.
    Nop,
}

impl Instr {
    /// Whether this instruction reads or writes memory through a data address.
    pub fn is_memory(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// Whether this is a conditional branch (produces a taken/not-taken outcome).
    pub fn is_branch(&self) -> bool {
        matches!(self, Instr::Bnz { .. } | Instr::Bez { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Imm { rd, value } => write!(f, "imm {rd}, {value}"),
            Instr::Alu { op, rd, ra, rb } => write!(f, "{op} {rd}, {ra}, {rb}"),
            Instr::AluI { op, rd, ra, imm } => write!(f, "{op}i {rd}, {ra}, {imm}"),
            Instr::Load { rd, base, offset } => write!(f, "ld {rd}, [{base}+{offset}]"),
            Instr::Store { rs, base, offset } => write!(f, "st {rs}, [{base}+{offset}]"),
            Instr::Jump { target } => write!(f, "j {target}"),
            Instr::Bnz { cond, target } => write!(f, "bnz {cond}, {target}"),
            Instr::Bez { cond, target } => write!(f, "bez {cond}, {target}"),
            Instr::Spawn { rd, entry, arg } => write!(f, "spawn {rd}, {entry}, {arg}"),
            Instr::Join { tid } => write!(f, "join {tid}"),
            Instr::Lock { base, offset } => write!(f, "lock [{base}+{offset}]"),
            Instr::Unlock { base, offset } => write!(f, "unlock [{base}+{offset}]"),
            Instr::Fence => write!(f, "fence"),
            Instr::Barrier { base, offset } => write!(f, "barrier [{base}+{offset}]"),
            Instr::Out { rs } => write!(f, "out {rs}"),
            Instr::Assert { cond, code } => write!(f, "assert {cond}, {code}"),
            Instr::Halt => write!(f, "halt"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_apply_basics() {
        assert_eq!(AluOp::Add.apply(2, 3), Some(5));
        assert_eq!(AluOp::Sub.apply(2, 3), Some(-1));
        assert_eq!(AluOp::Mul.apply(4, 3), Some(12));
        assert_eq!(AluOp::Div.apply(7, 2), Some(3));
        assert_eq!(AluOp::Rem.apply(7, 2), Some(1));
        assert_eq!(AluOp::Div.apply(7, 0), None);
        assert_eq!(AluOp::Rem.apply(7, 0), None);
        assert_eq!(AluOp::Lt.apply(1, 2), Some(1));
        assert_eq!(AluOp::Lt.apply(2, 1), Some(0));
        assert_eq!(AluOp::Eq.apply(5, 5), Some(1));
        assert_eq!(AluOp::Ne.apply(5, 5), Some(0));
        assert_eq!(AluOp::Min.apply(-3, 9), Some(-3));
        assert_eq!(AluOp::Max.apply(-3, 9), Some(9));
    }

    #[test]
    fn alu_apply_wrapping_and_shifts() {
        assert_eq!(AluOp::Add.apply(Word::MAX, 1), Some(Word::MIN));
        assert_eq!(AluOp::Shl.apply(1, 4), Some(16));
        assert_eq!(AluOp::Shr.apply(-16, 2), Some(-4));
        // Shift amounts are masked, not UB.
        assert_eq!(AluOp::Shl.apply(1, 64), Some(1));
    }

    #[test]
    fn alu_latencies_ordered() {
        assert!(AluOp::Add.latency() < AluOp::Mul.latency());
        assert!(AluOp::Mul.latency() < AluOp::Div.latency());
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(SP.to_string(), "sp");
        assert_eq!(FP.to_string(), "fp");
    }

    #[test]
    fn instr_classification() {
        assert!(Instr::Load { rd: Reg(1), base: Reg(2), offset: 0 }.is_memory());
        assert!(Instr::Store { rs: Reg(1), base: Reg(2), offset: 0 }.is_memory());
        assert!(!Instr::Nop.is_memory());
        assert!(Instr::Bnz { cond: Reg(1), target: 0 }.is_branch());
        assert!(Instr::Bez { cond: Reg(1), target: 0 }.is_branch());
        assert!(!Instr::Jump { target: 0 }.is_branch());
    }

    #[test]
    fn instr_display_smoke() {
        let i = Instr::Load { rd: Reg(1), base: Reg(2), offset: 8 };
        assert_eq!(i.to_string(), "ld r1, [r2+8]");
        assert_eq!(Instr::Halt.to_string(), "halt");
    }
}
