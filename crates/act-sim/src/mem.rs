//! Functional memory: a sparse, word-granular flat address space with a
//! region map for access validation.
//!
//! Timing and coherence are modeled separately in [`crate::memsys`]; this
//! module only holds architectural values. The page `[0, DATA_BASE)` is never
//! mapped, so dereferencing a null (or near-null) pointer crashes, which is
//! how several of the paper's bugs (Apache, MySQL#2, PBzip2) manifest.

use crate::isa::{Addr, Word, WORD_BYTES};
use crate::program::DATA_BASE;
use std::collections::HashMap;

/// Why a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessFault {
    /// The address falls in the unmapped null page `[0, 0x1000)`.
    Null,
    /// The address is outside every mapped region.
    Unmapped,
}

/// Sparse functional memory.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    words: HashMap<u64, Word>,
    /// Mapped `(base, len_bytes)` regions, kept sorted by base.
    regions: Vec<(Addr, u64)>,
}

impl Memory {
    /// Empty memory with no mapped regions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Map `len` bytes starting at `base`. Overlapping maps are merged
    /// implicitly (validity is a union of regions).
    ///
    /// # Panics
    ///
    /// Panics if the region intersects the null page.
    pub fn map_region(&mut self, base: Addr, len: u64) {
        assert!(base >= DATA_BASE, "cannot map the null page");
        self.regions.push((base, len));
        self.regions.sort_unstable();
    }

    /// Whether a word access at `addr` is valid.
    pub fn check(&self, addr: Addr) -> Result<(), AccessFault> {
        if addr < DATA_BASE {
            return Err(AccessFault::Null);
        }
        let end = addr + WORD_BYTES;
        if self.regions.iter().any(|&(base, len)| addr >= base && end <= base + len) {
            Ok(())
        } else {
            Err(AccessFault::Unmapped)
        }
    }

    /// Read the word at `addr` (must be word-aligned). Unwritten words are 0.
    pub fn read(&self, addr: Addr) -> Word {
        debug_assert_eq!(addr % WORD_BYTES, 0, "unaligned read at {addr:#x}");
        self.words.get(&(addr / WORD_BYTES)).copied().unwrap_or(0)
    }

    /// Write the word at `addr` (must be word-aligned).
    pub fn write(&mut self, addr: Addr, value: Word) {
        debug_assert_eq!(addr % WORD_BYTES, 0, "unaligned write at {addr:#x}");
        self.words.insert(addr / WORD_BYTES, value);
    }

    /// Bulk-initialize `values` starting at `base` and map the region.
    pub fn load_segment(&mut self, base: Addr, values: &[Word]) {
        let len = (values.len() as u64) * WORD_BYTES;
        if len > 0 {
            self.map_region(base, len);
        }
        for (i, &v) in values.iter().enumerate() {
            self.write(base + (i as u64) * WORD_BYTES, v);
        }
    }

    /// Total number of words ever written (for tests/stats).
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_of_unwritten_word_is_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0x2000), 0);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut m = Memory::new();
        m.write(0x2000, -5);
        assert_eq!(m.read(0x2000), -5);
        m.write(0x2000, 9);
        assert_eq!(m.read(0x2000), 9);
    }

    #[test]
    fn null_page_faults() {
        let mut m = Memory::new();
        m.map_region(0x2000, 64);
        assert_eq!(m.check(0), Err(AccessFault::Null));
        assert_eq!(m.check(0xff8), Err(AccessFault::Null));
    }

    #[test]
    fn unmapped_faults_and_mapped_passes() {
        let mut m = Memory::new();
        m.map_region(0x2000, 64);
        assert_eq!(m.check(0x2000), Ok(()));
        assert_eq!(m.check(0x2038), Ok(())); // last full word
        assert_eq!(m.check(0x2040), Err(AccessFault::Unmapped));
        assert_eq!(m.check(0x9000), Err(AccessFault::Unmapped));
    }

    #[test]
    fn word_straddling_region_end_faults() {
        let mut m = Memory::new();
        m.map_region(0x2000, 12); // not a whole number of words
        assert_eq!(m.check(0x2008), Err(AccessFault::Unmapped));
    }

    #[test]
    fn load_segment_maps_and_fills() {
        let mut m = Memory::new();
        m.load_segment(0x3000, &[7, 8, 9]);
        assert_eq!(m.read(0x3000), 7);
        assert_eq!(m.read(0x3010), 9);
        assert_eq!(m.check(0x3010), Ok(()));
        assert_eq!(m.check(0x3018), Err(AccessFault::Unmapped));
        assert_eq!(m.footprint_words(), 3);
    }

    #[test]
    #[should_panic(expected = "null page")]
    fn mapping_null_page_panics() {
        let mut m = Memory::new();
        m.map_region(0x10, 64);
    }
}
