//! # act-sim — cycle-level chip-multiprocessor simulator
//!
//! The hardware substrate for reproducing *Production-Run Software Failure
//! Diagnosis via Adaptive Communication Tracking* (ACT). It models the
//! machine of the paper's Table III: out-of-order-completing cores with a
//! reorder buffer, private L1/L2 write-back caches kept coherent with a
//! snoopy MESI bus, a shared memory, and — crucially for ACT — *last-writer
//! metadata* in cache lines so each retiring load can be attributed to the
//! store that produced its value (a RAW dependence).
//!
//! Programs are written in a small assembler-level IR (see [`asm::Asm`])
//! because the paper's PIN-instrumented native binaries are not available in
//! this environment; the IR provides loads/stores/branches, threads, and
//! locks, which is everything the evaluation's communication patterns need.
//!
//! ## Quick start
//!
//! ```
//! use act_sim::asm::Asm;
//! use act_sim::config::MachineConfig;
//! use act_sim::isa::Reg;
//! use act_sim::machine::Machine;
//!
//! let mut a = Asm::new();
//! let buf = a.static_zeroed(1);
//! a.func("main");
//! a.imm(Reg(1), buf as i64);
//! a.imm(Reg(2), 7);
//! a.store(Reg(2), Reg(1), 0);
//! a.load(Reg(3), Reg(1), 0);
//! a.out(Reg(3));
//! a.halt();
//! let program = a.finish()?;
//!
//! let mut machine = Machine::new(&program, MachineConfig::default());
//! let outcome = machine.run();
//! assert_eq!(outcome.output(), Some(&[7][..]));
//! # Ok::<(), act_sim::asm::AsmError>(())
//! ```
//!
//! ## Extension points
//!
//! * [`attach::CoreAttachment`] — a per-core hardware module that can stall
//!   load retirement (the ACT module's integration point).
//! * [`attach::Observer`] — passive, machine-wide event taps used by trace
//!   collection and the PBI baseline.

pub mod asm;
pub mod attach;
pub mod config;
pub mod events;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod memsys;
pub mod outcome;
pub mod program;
pub mod stats;

pub use attach::{CoreAttachment, Observer};
pub use config::{MachineConfig, MetaGranularity};
pub use events::{BranchEvent, CacheEvent, LoadEvent, RawDep, StoreEvent, ThreadId};
pub use machine::Machine;
pub use outcome::{CrashKind, RunOutcome};
pub use program::Program;
