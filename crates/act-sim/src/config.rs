//! Machine configuration (paper Table III).

use std::fmt;

/// Granularity at which last-writer metadata is kept in cache lines.
///
/// The paper's default design stores one last-writer entry per *word*; §V
/// relaxes this to one entry per *line*, which is cheaper but suffers
/// false-sharing aliasing (a load may be attributed to a store to a
/// different word of the same line). Fig 9's experiment sweeps this knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MetaGranularity {
    /// One last-writer entry per word (precise within a line).
    #[default]
    Word,
    /// One last-writer entry per line (subject to false sharing).
    Line,
}

impl fmt::Display for MetaGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaGranularity::Word => f.write_str("word"),
            MetaGranularity::Line => f.write_str("line"),
        }
    }
}

/// Parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in cycles (round trip within the level).
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets for a given line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is not a power of two.
    pub fn sets(&self, line_bytes: u64) -> usize {
        let lines = self.size_bytes / line_bytes;
        let sets = lines as usize / self.ways;
        assert!(sets > 0 && sets.is_power_of_two(), "bad cache geometry");
        sets
    }
}

/// Full machine configuration. Defaults follow the paper's bold-faced
/// parameters in Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of processor cores (threads are pinned to cores).
    pub cores: usize,
    /// Instructions dispatched per core per cycle.
    pub issue_width: usize,
    /// Instructions retired per core per cycle.
    pub retire_width: usize,
    /// Reorder-buffer entries per core.
    pub rob_entries: usize,
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Private L2 cache (coherence point).
    pub l2: CacheConfig,
    /// Cache line size in bytes (32, 64, or 128 in the paper's sweep).
    pub line_bytes: u64,
    /// Bus width in bytes (a line transfer takes `line_bytes / bus_bytes` cycles).
    pub bus_bytes: u64,
    /// Main-memory round-trip latency in cycles.
    pub mem_latency: u64,
    /// Last-writer metadata granularity.
    pub granularity: MetaGranularity,
    /// Per-cycle probability (×1e6) of injecting a 1-cycle dispatch bubble,
    /// used to perturb thread interleavings across seeded runs. 0 disables.
    pub jitter_ppm: u32,
    /// RNG seed for jitter (and nothing else; simulation is otherwise
    /// deterministic).
    pub seed: u64,
    /// Safety limit: abort the run as [`crate::outcome::RunOutcome::Timeout`]
    /// after this many cycles.
    pub max_cycles: u64,
    /// Preemption quantum in cycles, or 0 for run-to-completion scheduling.
    /// With a quantum, a core whose thread has run that long is preempted
    /// whenever other threads are waiting — the OS context switch of the
    /// paper's §IV-D, which must save/restore the ACT module's weight
    /// registers along with the architectural state.
    pub preemption_quantum: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 8,
            issue_width: 2,
            retire_width: 3,
            rob_entries: 140,
            l1: CacheConfig { size_bytes: 32 * 1024, ways: 4, latency: 2 },
            l2: CacheConfig { size_bytes: 512 * 1024, ways: 8, latency: 10 },
            line_bytes: 64,
            bus_bytes: 32,
            mem_latency: 300,
            granularity: MetaGranularity::Word,
            jitter_ppm: 20_000, // 2% dispatch bubbles: enough to vary interleavings
            seed: 0,
            max_cycles: 200_000_000,
            preemption_quantum: 0,
        }
    }
}

impl MachineConfig {
    /// Default configuration with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        MachineConfig { seed, ..Self::default() }
    }

    /// Number of words per cache line.
    pub fn words_per_line(&self) -> usize {
        (self.line_bytes / crate::isa::WORD_BYTES) as usize
    }

    /// Cycles the bus is occupied by one line transfer (plus one arbitration
    /// cycle).
    pub fn bus_transfer_cycles(&self) -> u64 {
        1 + self.line_bytes / self.bus_bytes
    }

    /// Validate internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical geometry (zero cores/widths, non-power-of-two
    /// caches, line smaller than a word).
    pub fn validate(&self) {
        assert!(self.cores > 0, "need at least one core");
        assert!(self.issue_width > 0 && self.retire_width > 0);
        assert!(self.rob_entries >= self.issue_width);
        assert!(self.line_bytes >= crate::isa::WORD_BYTES);
        assert!(self.line_bytes.is_power_of_two());
        assert!(self.bus_bytes > 0 && self.line_bytes % self.bus_bytes == 0);
        let _ = self.l1.sets(self.line_bytes);
        let _ = self.l2.sets(self.line_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table3() {
        let c = MachineConfig::default();
        c.validate();
        assert_eq!(c.cores, 8);
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.retire_width, 3);
        assert_eq!(c.rob_entries, 140);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.ways, 4);
        assert_eq!(c.l1.latency, 2);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.latency, 10);
        assert_eq!(c.mem_latency, 300);
        assert_eq!(c.granularity, MetaGranularity::Word);
    }

    #[test]
    fn geometry_helpers() {
        let c = MachineConfig::default();
        assert_eq!(c.words_per_line(), 8);
        assert_eq!(c.bus_transfer_cycles(), 3);
        assert_eq!(c.l1.sets(64), 128);
        assert_eq!(c.l2.sets(64), 1024);
    }

    #[test]
    fn line_size_sweep_is_valid() {
        for line in [32u64, 64, 128] {
            let c = MachineConfig { line_bytes: line, ..Default::default() };
            c.validate();
        }
    }

    #[test]
    #[should_panic(expected = "bad cache geometry")]
    fn bad_geometry_panics() {
        let c = MachineConfig {
            l1: CacheConfig { size_bytes: 100, ways: 3, latency: 1 },
            ..Default::default()
        };
        c.validate();
    }
}
