//! `act` — command-line interface to the ACT toolchain.
//!
//! ```text
//! act list                                  list all workloads
//! act disasm <workload>                     disassemble a workload's program
//! act run <workload> [--seed N] [--trigger] [--new-code]
//! act trace <workload> --out DIR [--runs N] collect correct-run traces
//! act train <workload> --out FILE [--runs N] offline-train, save weights
//! act diagnose <workload> [--weights FILE]  full single-failure diagnosis
//! act campaign <spec> [--jobs N] [--out FILE] [--no-timing]
//! act serve [--addr A] [--workers N] [--queue-depth D] [--model-dir DIR]
//!           [--corpus DIR] [--batch-size N] [--batch-wait US]
//! act request <train|diagnose|status|shutdown|trace-put|trace-get> ...
//! act store <init|put|get|ls|stat|compact> DIR [args]
//! ```

use act_bench::{
    act_cfg_for, collect_clean_traces, find_act_failure, machine_cfg, norm_of, train_workload,
};
use act_core::diagnosis::diagnose;
use act_core::offline::offline_train;
use act_core::weights::{shared, WeightStore};
use act_sim::machine::Machine;
use act_trace::collector::TraceCollector;
use act_trace::correct_set::CorrectSet;
use act_trace::input_gen::positive_sequences;
use act_trace::raw::observed_deps;
use act_workloads::registry;
use act_workloads::spec::{Params, Workload};
use std::io::BufReader;
use std::process::ExitCode;

mod netopts;
use netopts::{parse_count, NetOpts};

fn usage() -> ExitCode {
    eprintln!(
        "usage: act <command> [args]\n\
         \n\
         commands:\n\
         \x20 list                                   list workloads\n\
         \x20 disasm <workload>                      disassemble the program\n\
         \x20 run <workload> [--seed N] [--trigger] [--new-code]\n\
         \x20 trace <workload> --out DIR [--runs N]  collect correct-run traces\n\
         \x20 train <workload> --out FILE [--runs N] offline-train, save weights\n\
         \x20 diagnose <workload> [--weights FILE]   diagnose a single failure\n\
         \x20 campaign <spec> [--jobs N] [--out FILE] [--no-timing]\n\
         \x20                                        run a campaign spec in parallel\n\
         \x20 serve [--addr A] [--unix PATH] [--workers N] [--queue-depth D]\n\
         \x20       [--model-dir DIR] [--corpus DIR] [--cache N] [--deadline-ms MS]\n\
         \x20       [--io-timeout MS] [--event-log FILE]\n\
         \x20       [--batch-size N] [--batch-wait US]\n\
         \x20                                        run the diagnosis daemon\n\
         \x20                                        (--batch-size 1 disables request\n\
         \x20                                        coalescing; --batch-wait is the\n\
         \x20                                        gather window in microseconds,\n\
         \x20                                        default 0 = never wait)\n\
         \x20 gate --backends A,B,... [--listen ADDR] [--workers N] [--queue-depth D]\n\
         \x20      [--vnodes N] [--connect-timeout MS] [--io-timeout MS]\n\
         \x20      [--event-log FILE]                 run the sharding gateway\n\
         \x20 request <train|diagnose|status|shutdown|trace-put|trace-get> [workload]\n\
         \x20       [--addr A] [--unix PATH] [--seed N] [--traces N]\n\
         \x20       [--seq-len N] [--hidden N] [--epochs N] [--trace FILE] [--key K]\n\
         \x20       [--connect-timeout MS] [--io-timeout MS] [--retry MS]\n\
         \x20       [--pipeline-depth N] [--stream]  talk to a running daemon\n\
         \x20 store init DIR                         create an empty corpus store\n\
         \x20 store put DIR <workload> [--runs N] [--trace FILE --key K]\n\
         \x20                                        ingest correct-run traces\n\
         \x20 store get DIR <key> [--out FILE]       read a trace back as text\n\
         \x20 store ls DIR [workload]                list entries\n\
         \x20 store stat DIR                         corpus accounting\n\
         \x20 store compact DIR                      drop shadowed entries"
    );
    ExitCode::from(2)
}

pub(crate) struct Args {
    pub(crate) positional: Vec<String>,
    pub(crate) flags: std::collections::HashMap<String, String>,
    pub(crate) switches: std::collections::HashSet<String>,
}

pub(crate) fn parse_args(raw: &[String]) -> Args {
    let mut a =
        Args { positional: Vec::new(), flags: Default::default(), switches: Default::default() };
    let mut i = 0;
    while i < raw.len() {
        let t = &raw[i];
        if let Some(name) = t.strip_prefix("--") {
            // Value-taking flags.
            let takes_value = [
                "seed",
                "runs",
                "out",
                "weights",
                "jobs",
                "addr",
                "unix",
                "workers",
                "queue-depth",
                "model-dir",
                "cache",
                "deadline-ms",
                "event-log",
                "traces",
                "seq-len",
                "hidden",
                "epochs",
                "trace",
                "corpus",
                "key",
                "backends",
                "listen",
                "vnodes",
                "connect-timeout",
                "io-timeout",
                "retry",
                "pipeline-depth",
                "batch-size",
                "batch-wait",
            ];
            if takes_value.contains(&name) && i + 1 < raw.len() {
                a.flags.insert(name.to_string(), raw[i + 1].clone());
                i += 2;
                continue;
            }
            a.switches.insert(name.to_string());
        } else {
            a.positional.push(t.clone());
        }
        i += 1;
    }
    a
}

/// Resolve a worker-count flag (`--jobs`, `--workers`): absent means "all
/// cores", `0` and non-numbers are rejected with a clear message instead of
/// being silently replaced.
fn resolve_workers(args: &Args, flag: &str) -> Result<usize, ExitCode> {
    match args.flags.get(flag) {
        None => Ok(act_fleet::default_workers()),
        Some(raw) => match raw.parse::<usize>() {
            Ok(0) => {
                eprintln!(
                    "--{flag} must be at least 1 (got 0); omit the flag to use all {} cores",
                    act_fleet::default_workers()
                );
                Err(ExitCode::from(2))
            }
            Ok(n) => Ok(n),
            Err(_) => {
                eprintln!("--{flag} expects a positive integer, got `{raw}`");
                Err(ExitCode::from(2))
            }
        },
    }
}

fn lookup(name: &str) -> Result<Box<dyn Workload>, ExitCode> {
    registry::by_name(name).ok_or_else(|| {
        eprintln!("unknown workload `{name}`; try `act list`");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().map(String::as_str) else {
        return usage();
    };
    let args = parse_args(&raw[1..]);
    match cmd {
        "list" => cmd_list(),
        "disasm" => cmd_disasm(&args),
        "run" => cmd_run(&args),
        "trace" => cmd_trace(&args),
        "train" => cmd_train(&args),
        "diagnose" => cmd_diagnose(&args),
        "campaign" => cmd_campaign(&args),
        "serve" => cmd_serve(&args),
        "gate" => cmd_gate(&args),
        "request" => cmd_request(&args),
        "store" => cmd_store(&args),
        _ => usage(),
    }
}

fn cmd_list() -> ExitCode {
    println!("{:<36} {:<14} {}", "name", "kind", "description");
    println!("{}", "-".repeat(90));
    for w in registry::all() {
        let built = w.build(&w.default_params().triggered());
        let desc = built
            .bug
            .as_ref()
            .map_or_else(|| "clean kernel".to_string(), |b| b.description.replace('\n', " "));
        let desc: String = desc.chars().take(60).collect();
        println!("{:<36} {:<14} {}", w.name(), format!("{:?}", w.kind()), desc);
    }
    ExitCode::SUCCESS
}

fn cmd_disasm(args: &Args) -> ExitCode {
    let Some(name) = args.positional.first() else { return usage() };
    let w = match lookup(name) {
        Ok(w) => w,
        Err(e) => return e,
    };
    let built = w.build(&w.default_params());
    print!("{}", built.program.disassemble());
    ExitCode::SUCCESS
}

fn params_from(args: &Args, w: &dyn Workload) -> Params {
    let mut p = w.default_params();
    if let Some(seed) = args.flags.get("seed").and_then(|s| s.parse().ok()) {
        p.seed = seed;
    }
    p.trigger_bug = args.switches.contains("trigger");
    p.new_code = args.switches.contains("new-code");
    p
}

fn cmd_run(args: &Args) -> ExitCode {
    let Some(name) = args.positional.first() else { return usage() };
    let w = match lookup(name) {
        Ok(w) => w,
        Err(e) => return e,
    };
    let p = params_from(args, w.as_ref());
    let built = w.build(&p);
    let mut m = Machine::new(&built.program, machine_cfg(p.seed));
    let out = m.run();
    println!("outcome: {out}");
    println!("expected output: {:?}", built.expected_output);
    println!("actual output:   {:?}", out.output());
    println!("verdict: {}", if built.is_correct(&out) { "CORRECT" } else { "FAILURE" });
    let s = m.stats();
    println!(
        "cycles {} | instructions {} | loads {} | deps formed {} | l1 hits {} | c2c {}",
        s.total_cycles,
        s.total_retired(),
        s.total_loads(),
        s.mem.deps_formed,
        s.mem.l1_hits,
        s.mem.cache_to_cache
    );
    ExitCode::SUCCESS
}

fn cmd_trace(args: &Args) -> ExitCode {
    let Some(name) = args.positional.first() else { return usage() };
    let Some(dir) = args.flags.get("out") else {
        eprintln!("trace requires --out DIR");
        return ExitCode::from(2);
    };
    let runs: u64 = args.flags.get("runs").and_then(|s| s.parse().ok()).unwrap_or(10);
    let w = match lookup(name) {
        Ok(w) => w,
        Err(e) => return e,
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {dir}: {e}");
        return ExitCode::FAILURE;
    }
    let mut written = 0;
    for seed in 0..runs * 2 {
        if written == runs {
            break;
        }
        let built = w.build(&w.default_params().with_seed(seed));
        let mut coll = TraceCollector::new(norm_of(w.as_ref()));
        let mut m = Machine::new(&built.program, machine_cfg(seed));
        let out = m.run_observed(&mut coll);
        if !built.is_correct(&out) {
            continue;
        }
        let path = format!("{dir}/{name}-{seed}.trace");
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = act_trace::io::write_trace(&coll.into_trace(), file) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
        written += 1;
    }
    println!("{written} correct-run traces in {dir}");
    ExitCode::SUCCESS
}

fn cmd_train(args: &Args) -> ExitCode {
    let Some(name) = args.positional.first() else { return usage() };
    let Some(out) = args.flags.get("out") else {
        eprintln!("train requires --out FILE");
        return ExitCode::from(2);
    };
    let runs: usize = args.flags.get("runs").and_then(|s| s.parse().ok()).unwrap_or(10);
    let w = match lookup(name) {
        Ok(w) => w,
        Err(e) => return e,
    };
    let cfg = act_cfg_for(w.as_ref());
    let trained = train_workload(w.as_ref(), runs, &cfg);
    let r = &trained.report;
    println!(
        "trained {}: topology {} (N = {}), held-out FP {:.2}%, FN(paper) {:.2}%",
        name,
        r.topology,
        r.seq_len,
        100.0 * r.test_fp_rate,
        100.0 * r.test_fn_rate_paper
    );
    // Atomic save (temp file + rename): an interrupted `act train` never
    // leaves a torn weight file behind.
    if let Err(e) = trained.store.save_to_path(out) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("weights saved to {out}");
    ExitCode::SUCCESS
}

fn cmd_diagnose(args: &Args) -> ExitCode {
    let Some(name) = args.positional.first() else { return usage() };
    let w = match lookup(name) {
        Ok(w) => w,
        Err(e) => return e,
    };
    let cfg = act_cfg_for(w.as_ref());
    let store = match args.flags.get("weights") {
        Some(path) => {
            let f = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match WeightStore::load(BufReader::new(f)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            println!("(no --weights given: training from 10 correct runs first)");
            train_workload(w.as_ref(), 10, &cfg).store
        }
    };
    let seq_len = store.seq_len();
    let store = shared(store);
    let Some(failure) = find_act_failure(w.as_ref(), &store, &cfg, 30) else {
        eprintln!("no failure manifested in 30 triggered runs");
        return ExitCode::FAILURE;
    };
    println!("failure: {}", failure.run.outcome);
    let mut set = CorrectSet::default();
    for t in collect_clean_traces(w.as_ref(), 100..120) {
        for s in positive_sequences(&observed_deps(&t), seq_len) {
            set.insert(&s.deps);
        }
    }
    let diag = diagnose(&failure.run, &set);
    let program = &failure.built.program;
    println!(
        "debug buffer: {} entries, {} distinct, {} pruned ({:.0}%)",
        diag.total_logged,
        diag.distinct,
        diag.pruned,
        diag.filter_pct()
    );
    for (i, c) in diag.ranked.iter().take(8).enumerate() {
        let text: Vec<String> = c
            .deps
            .iter()
            .map(|d| {
                format!(
                    "{}->{}{}",
                    program.describe_pc(d.store_pc),
                    program.describe_pc(d.load_pc),
                    if d.inter_thread { "*" } else { "" }
                )
            })
            .collect();
        println!("  rank {:>2}: [{}]  nn={:.3}", i + 1, text.join(", "), c.output);
    }
    if let Some(bug) = &failure.built.bug {
        match diag.rank_where(|s| bug.matches_any(&s.deps)) {
            Some(rank) => println!("ground truth: root cause at rank {rank}"),
            None => println!("ground truth: root cause not ranked"),
        }
    }
    ExitCode::SUCCESS
}

/// `act campaign <spec>`: run a declarative workload × config × seed grid
/// across worker threads (default: all cores) and print the results.
///
/// The deterministic `results` section of the report is byte-identical at
/// any `--jobs` count; `--out FILE` writes the JSON report (`--no-timing`
/// strips the wall-clock section so the file itself is reproducible).
fn cmd_campaign(args: &Args) -> ExitCode {
    let Some(path) = args.positional.first() else {
        eprintln!(
            "campaign requires a spec file, e.g.\n\
             \x20 act campaign table5.spec --jobs 8 --out report.json\n\
             \n\
             spec format (key = value lines, `#` comments):\n\
             \x20 name      = my-campaign\n\
             \x20 kind      = run | train | diagnose | overhead | ablation\n\
             \x20 workloads = fft, lu, apache\n\
             \x20 configs   = default          # optional\n\
             \x20 seeds     = 0..8             # or: 0, 1, 7\n\
             other keys become executor parameters (e.g. traces = 10)"
        );
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match act_fleet::CampaignSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    let exec = match act_bench::campaign::executor_for(&spec) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(2);
        }
    };
    let jobs = match resolve_workers(args, "jobs") {
        Ok(n) => n,
        Err(e) => return e,
    };
    let report = act_fleet::run_campaign(&spec, jobs, exec);
    for line in report.lines() {
        println!("{line}");
    }
    for r in report.results.iter().filter(|r| !r.outcome.is_completed()) {
        if let act_fleet::JobOutcome::Crashed { message } = &r.outcome {
            eprintln!(
                "CRASHED job {} ({}/{}/seed {}): {message}",
                r.job.id, r.job.workload, r.job.config, r.job.seed
            );
        }
    }
    println!("{}", act_bench::campaign::timing_footer(&report));
    if let Some(out) = args.flags.get("out") {
        let json = if args.switches.contains("no-timing") {
            report.deterministic_json()
        } else {
            report.json()
        };
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!("report written to {out}");
    }
    if report.aggregate.crashed > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------
// act serve / act request — the diagnosis-as-a-service daemon.
// ---------------------------------------------------------------------

/// Set by the SIGINT/SIGTERM handler; the serve loop polls it.
static STOP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_stop_signal(_sig: i32) {
    STOP.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Install `on_stop_signal` for SIGINT and SIGTERM. Raw `signal(2)` via the
/// platform libc the binary is already linked against — the workspace is
/// offline, so no `libc`/`signal-hook` crates.
fn install_stop_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_stop_signal as *const () as usize);
        signal(SIGTERM, on_stop_signal as *const () as usize);
    }
}

/// `act serve`: run the diagnosis daemon until SIGINT/SIGTERM or a client's
/// SHUTDOWN frame, then drain accepted requests and print final counters.
fn cmd_serve(args: &Args) -> ExitCode {
    let workers = match resolve_workers(args, "workers") {
        Ok(n) => n,
        Err(e) => return e,
    };
    let queue_depth = match parse_count(args, "queue-depth", 64) {
        Ok(n) => n,
        Err(e) => return e,
    };
    let cache_capacity = match parse_count(args, "cache", 32) {
        Ok(n) => n,
        Err(e) => return e,
    };
    let deadline_ms = match parse_count(args, "deadline-ms", 120_000) {
        Ok(n) => n,
        Err(e) => return e,
    };
    let batch_size = match parse_count(args, "batch-size", 16) {
        Ok(n) => n,
        Err(e) => return e,
    };
    // Zero — the default — is meaningful here ("take what is queued, never
    // wait"), so this flag does not go through `parse_count`.
    let batch_wait_us = match args.flags.get("batch-wait") {
        None => 0u64,
        Some(raw) => match raw.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "--batch-wait expects microseconds (a non-negative integer), got `{raw}`"
                );
                return ExitCode::from(2);
            }
        },
    };
    // Only --io-timeout applies to a listening daemon, but the flag set
    // (and its validation) is shared with `act gate` / `act request`.
    let net = match NetOpts::from_args(args, 2_000, 30_000) {
        Ok(n) => n,
        Err(e) => return e,
    };
    if let Some(path) = args.flags.get("event-log") {
        match act_obs::JsonlSink::create(std::path::Path::new(path)) {
            Ok(sink) => {
                act_obs::events().add_sink(Box::new(sink));
                println!("event log: {path}");
            }
            Err(e) => {
                eprintln!("cannot open event log {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let unix_path = args.flags.get("unix").map(std::path::PathBuf::from);
    let cfg = act_serve::ServeConfig {
        tcp_addr: if unix_path.is_some() && !args.flags.contains_key("addr") {
            None // --unix alone means Unix-socket only
        } else {
            Some(args.flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7411".to_string()))
        },
        unix_path,
        workers,
        queue_depth,
        model_dir: args.flags.get("model-dir").map(std::path::PathBuf::from),
        corpus_dir: args.flags.get("corpus").map(std::path::PathBuf::from),
        cache_capacity,
        deadline: std::time::Duration::from_millis(deadline_ms as u64),
        io_timeout: net.io_timeout,
        batch_size,
        batch_wait: std::time::Duration::from_micros(batch_wait_us),
        ..act_serve::ServeConfig::default()
    };
    let server = match act_serve::Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = server.tcp_addr() {
        println!("act-serve listening on tcp://{addr}");
    }
    if let Some(path) = &cfg.unix_path {
        println!("act-serve listening on unix://{}", path.display());
    }
    if let Some(dir) = args.flags.get("corpus") {
        println!("corpus store: {dir}");
    }
    println!(
        "workers {workers} | queue depth {queue_depth} | cache {cache_capacity} models | \
         batch {batch_size}x{batch_wait_us}us"
    );
    install_stop_handler();
    while !STOP.load(std::sync::atomic::Ordering::SeqCst) && !server.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("draining...");
    server.shutdown();
    let final_status = server.status_text();
    server.join();
    print!("{final_status}");
    ExitCode::SUCCESS
}

fn cmd_gate(args: &Args) -> ExitCode {
    let Some(raw_backends) = args.flags.get("backends") else {
        eprintln!("act gate needs --backends ADDR[,ADDR...] (act-serve TCP addresses)");
        return ExitCode::from(2);
    };
    let backends: Vec<String> = raw_backends
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if backends.is_empty() {
        eprintln!("--backends lists no addresses: `{raw_backends}`");
        return ExitCode::from(2);
    }
    let workers = match resolve_workers(args, "workers") {
        Ok(n) => n,
        Err(e) => return e,
    };
    let queue_depth = match parse_count(args, "queue-depth", 64) {
        Ok(n) => n,
        Err(e) => return e,
    };
    let vnodes = match parse_count(args, "vnodes", 64) {
        Ok(n) => n,
        Err(e) => return e,
    };
    // --connect-timeout / --io-timeout govern the backend links (a cold
    // TRAIN on a backend legitimately takes minutes).
    let net = match NetOpts::from_args(args, 2_000, 300_000) {
        Ok(n) => n,
        Err(e) => return e,
    };
    if let Some(path) = args.flags.get("event-log") {
        match act_obs::JsonlSink::create(std::path::Path::new(path)) {
            Ok(sink) => {
                act_obs::events().add_sink(Box::new(sink));
                println!("event log: {path}");
            }
            Err(e) => {
                eprintln!("cannot open event log {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let cfg = act_gate::GateConfig {
        listen: args.flags.get("listen").cloned().unwrap_or_else(|| "127.0.0.1:7412".to_string()),
        backends,
        vnodes,
        workers,
        queue_depth,
        connect_timeout: net.connect_timeout,
        backend_timeout: net.io_timeout,
        ..act_gate::GateConfig::default()
    };
    let gate = match act_gate::Gateway::start(cfg.clone()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot start gateway: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("act-gate listening on tcp://{}", gate.tcp_addr());
    println!(
        "backends {} | vnodes {vnodes} | workers {workers} | queue depth {queue_depth}",
        cfg.backends.len()
    );
    install_stop_handler();
    while !STOP.load(std::sync::atomic::Ordering::SeqCst) && !gate.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("draining...");
    gate.shutdown();
    let final_status = gate.status_text();
    gate.join();
    print!("{final_status}");
    ExitCode::SUCCESS
}

/// An [`act_client::Client`] for the daemon named by `--addr`/`--unix`
/// (default local TCP port), configured from the shared network flags.
fn client_from(args: &Args) -> Result<act_client::Client, ExitCode> {
    let net = NetOpts::from_args(args, 10_000, 300_000)?;
    let depth = parse_count(args, "pipeline-depth", 1)?;
    let mut builder = act_client::Client::builder();
    builder = if let Some(path) = args.flags.get("unix") {
        builder.unix(path)
    } else {
        builder
            .addr(args.flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7411".to_string()))
    };
    builder = builder.timeouts(net.connect_timeout, net.io_timeout).pipeline_depth(depth as u32);
    if let Some(backoff) = net.retry {
        let seed = args.flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(0);
        builder = builder.retry(backoff, seed);
    }
    builder.build().map_err(|e| {
        eprintln!("{e}");
        ExitCode::from(2)
    })
}

/// The model spec named by `act request` flags.
fn spec_from(args: &Args, workload: &str) -> act_serve::ModelSpec {
    let mut spec = act_serve::ModelSpec::new(workload);
    let num = |flag: &str| args.flags.get(flag).and_then(|s| s.parse::<u64>().ok());
    if let Some(v) = num("seed") {
        spec.seed = v;
    }
    if let Some(v) = num("traces") {
        spec.traces = v as u32;
    }
    if let Some(v) = num("seq-len") {
        spec.seq_len = v as u16;
    }
    if let Some(v) = num("hidden") {
        spec.hidden = v as u16;
    }
    if let Some(v) = num("epochs") {
        spec.max_epochs = v as u32;
    }
    spec
}

/// A serialized failing trace of `name`: from `--trace FILE` when given,
/// otherwise by running the triggered configuration locally until the bug
/// manifests (what a production client's tracing layer would ship).
fn failing_trace_bytes(args: &Args, name: &str) -> Result<Vec<u8>, ExitCode> {
    if let Some(path) = args.flags.get("trace") {
        return std::fs::read(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        });
    }
    let w = lookup(name)?;
    let base = args.flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(0);
    for seed in base..base + 64 {
        let built = w.build(&w.default_params().triggered().with_seed(seed));
        let mut coll = TraceCollector::new(norm_of(w.as_ref()));
        let mut m = Machine::new(&built.program, machine_cfg(seed));
        let out = m.run_observed(&mut coll);
        if built.is_failure(&out) {
            println!("(failure manifested at seed {seed}; shipping its trace)");
            return Ok(act_trace::io::trace_to_bytes(&coll.into_trace()));
        }
    }
    eprintln!("{name}: no failure manifested in 64 triggered runs");
    Err(ExitCode::FAILURE)
}

/// `act request <train|diagnose|status|shutdown|trace-put|trace-get>`:
/// one typed call through [`act_client::Client`]. `--pipeline-depth N`
/// (N > 1) rides a multiplexed v4 session; `--stream` sends uploads in
/// chunks instead of one frame, so they are not bounded by the 64 MiB
/// payload cap.
fn cmd_request(args: &Args) -> ExitCode {
    let Some(verb) = args.positional.first().map(String::as_str) else { return usage() };
    let client = match client_from(args) {
        Ok(c) => c,
        Err(e) => return e,
    };
    let fail = |e: act_client::ActError| {
        eprintln!("{e}");
        ExitCode::FAILURE
    };
    match verb {
        "status" => match client.status() {
            Ok(status) => {
                print!("{}", status.text);
                if let Some(snap) = status.metrics {
                    // Hit rate counts every no-retraining outcome: memory,
                    // the model dir, and the corpus store.
                    let hits = snap.counter("cache_memory_hits").unwrap_or(0)
                        + snap.counter("cache_disk_loads").unwrap_or(0)
                        + snap.counter("cache_store_loads").unwrap_or(0);
                    let total = hits + snap.counter("cache_trained").unwrap_or(0);
                    if total > 0 {
                        println!("cache_hit_rate {:.1}%", 100.0 * hits as f64 / total as f64);
                    }
                    println!("\n-- metrics --");
                    print!("{}", snap.render_table());
                }
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "shutdown" => match client.shutdown() {
            Ok(()) => {
                println!("server shutting down");
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "trace-put" => {
            let Some(name) = args.positional.get(1) else {
                eprintln!("request trace-put requires a workload name");
                return ExitCode::from(2);
            };
            let Some(path) = args.flags.get("trace") else {
                eprintln!("request trace-put requires --trace FILE (a correct-run text trace)");
                return ExitCode::from(2);
            };
            let key = args.flags.get("key").cloned().unwrap_or_else(|| {
                std::path::Path::new(path)
                    .file_stem()
                    .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned())
            });
            let stored = if args.switches.contains("stream") {
                // Chunked upload straight off the file handle: the trace
                // is never fully resident in this process.
                match std::fs::File::open(path) {
                    Ok(file) => client.trace_put_streaming(&key, name, BufReader::new(file)),
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                match std::fs::read(path) {
                    Ok(bytes) => client.trace_put(&key, name, &bytes),
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            match stored {
                Ok(text) => {
                    println!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "trace-get" => {
            let Some(key) =
                args.flags.get("key").cloned().or_else(|| args.positional.get(1).cloned())
            else {
                eprintln!("request trace-get requires a key (--key K or positional)");
                return ExitCode::from(2);
            };
            match client.trace_get(&key) {
                Ok(bytes) => {
                    match args.flags.get("out") {
                        Some(path) => {
                            if let Err(e) = std::fs::write(path, &bytes) {
                                eprintln!("cannot write {path}: {e}");
                                return ExitCode::FAILURE;
                            }
                            println!("trace written to {path} ({} bytes)", bytes.len());
                        }
                        None => print!("{}", String::from_utf8_lossy(&bytes)),
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "train" | "diagnose" => {
            let Some(name) = args.positional.get(1) else {
                eprintln!("request {verb} requires a workload name");
                return ExitCode::from(2);
            };
            let spec = spec_from(args, name);
            let answer = if verb == "train" {
                client.train(&spec)
            } else {
                let bytes = match failing_trace_bytes(args, name) {
                    Ok(b) => b,
                    Err(e) => return e,
                };
                if args.switches.contains("stream") {
                    client.diagnose_streaming(&spec, std::io::Cursor::new(bytes))
                } else {
                    client.diagnose(&spec, &bytes)
                }
            };
            match answer {
                Ok(text) => {
                    println!("{text}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        _ => usage(),
    }
}

// The offline_train import is exercised indirectly through act_bench's
// train_workload; keep the direct path available for library users.
#[allow(dead_code)]
fn retrain_from_dir(dir: &str, norm: usize) -> Result<WeightStore, Box<dyn std::error::Error>> {
    let mut traces = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "trace") {
            let f = std::fs::File::open(&path)?;
            traces.push(act_trace::io::read_trace(BufReader::new(f))?);
        }
    }
    let cfg = act_core::ActConfig::default();
    Ok(offline_train(norm, &traces, &cfg).store)
}

/// `act store <init|put|get|ls|stat|compact> DIR [args]` — manage an
/// on-disk trace/model corpus (`act-store`) without a running daemon.
fn cmd_store(args: &Args) -> ExitCode {
    let Some(verb) = args.positional.first().map(String::as_str) else { return usage() };
    let Some(dir) = args.positional.get(1) else {
        eprintln!("store {verb} requires a corpus directory");
        return ExitCode::from(2);
    };
    match verb {
        "init" => match act_store::Corpus::init(dir) {
            Ok(_) => {
                println!("initialised empty corpus at {dir}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot initialise {dir}: {e}");
                ExitCode::FAILURE
            }
        },
        "put" => cmd_store_put(args, dir),
        "get" => {
            let Some(key) = args.positional.get(2) else {
                eprintln!("store get requires a key");
                return ExitCode::from(2);
            };
            let corpus = match act_store::Corpus::open(dir) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot open {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let trace = match corpus.get_trace(key) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("store get {key}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let bytes = act_trace::io::trace_to_bytes(&trace);
            match args.flags.get("out") {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &bytes) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!(
                        "wrote {path} ({} records, {} bytes)",
                        trace.records.len(),
                        bytes.len()
                    );
                }
                None => print!("{}", String::from_utf8_lossy(&bytes)),
            }
            ExitCode::SUCCESS
        }
        "ls" => {
            let corpus = match act_store::Corpus::open(dir) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot open {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let filter = args.positional.get(2).map(String::as_str);
            let entries = corpus.entries(filter);
            println!(
                "{:<12} {:<24} {:<12} {:>8} {:>10} {:>10} {:>6}",
                "KIND", "KEY", "WORKLOAD", "RECORDS", "RAW", "ENCODED", "RATIO"
            );
            for e in &entries {
                let ratio = e.raw_bytes as f64 / e.encoded_bytes.max(1) as f64;
                println!(
                    "{:<12} {:<24} {:<12} {:>8} {:>10} {:>10} {:>5.2}x",
                    e.meta.kind.name(),
                    e.meta.key,
                    e.meta.workload,
                    e.records,
                    e.raw_bytes,
                    e.encoded_bytes,
                    ratio
                );
            }
            println!("{} live entries", entries.len());
            ExitCode::SUCCESS
        }
        "stat" => {
            let corpus = match act_store::Corpus::open(dir) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot open {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let stat = match corpus.stat() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot stat {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = corpus.open_report();
            println!("corpus {dir}");
            println!("  sealed segments  {}", stat.sealed_segments);
            println!("  live entries     {} (of {} total)", stat.live_entries, stat.total_entries);
            println!("  raw bytes        {}", stat.raw_bytes);
            println!("  encoded bytes    {}", stat.encoded_bytes);
            println!("  compression      {:.2}x", stat.ratio_milli as f64 / 1000.0);
            println!("  disk bytes       {}", stat.disk_bytes);
            if report.dropped_tail {
                println!("  recovered: dropped {} uncommitted tail bytes", report.dropped_bytes);
            }
            ExitCode::SUCCESS
        }
        "compact" => {
            let mut corpus = match act_store::Corpus::open(dir) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot open {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match corpus.compact() {
                Ok(s) => {
                    println!(
                        "compacted {dir}: kept {} entries, dropped {}, {} -> {} disk bytes",
                        s.entries_kept, s.entries_dropped, s.disk_bytes_before, s.disk_bytes_after
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("compact failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("unknown store subcommand: {other}");
            usage()
        }
    }
}

/// `act store put DIR <workload> [--runs N]` collects correct-run traces
/// straight into the corpus; `--trace FILE --key K` ingests an existing
/// text trace instead.
fn cmd_store_put(args: &Args, dir: &str) -> ExitCode {
    let mut corpus = match act_store::Corpus::open_or_init(dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot open {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(name) = args.positional.get(2) else {
        eprintln!("store put requires a workload name");
        return ExitCode::from(2);
    };
    if let Some(path) = args.flags.get("trace") {
        let key = args.flags.get("key").cloned().unwrap_or_else(|| {
            std::path::Path::new(path)
                .file_stem()
                .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned())
        });
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match corpus.put_trace_bytes(&key, name, &bytes) {
            Ok(info) => {
                println!(
                    "stored {key} ({} records, {} -> {} bytes)",
                    info.records, info.raw_bytes, info.encoded_bytes
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("store put {key}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let runs: u64 = args.flags.get("runs").and_then(|s| s.parse().ok()).unwrap_or(10);
    let w = match lookup(name) {
        Ok(w) => w,
        Err(e) => return e,
    };
    let mut stored = 0;
    for seed in 0..runs * 2 {
        if stored == runs {
            break;
        }
        let built = w.build(&w.default_params().with_seed(seed));
        let mut coll = TraceCollector::new(norm_of(w.as_ref()));
        let mut m = Machine::new(&built.program, machine_cfg(seed));
        let out = m.run_observed(&mut coll);
        if !built.is_correct(&out) {
            continue;
        }
        let key = format!("{name}-{seed}");
        match corpus.put_trace(&key, name, &coll.into_trace()) {
            Ok(info) => {
                println!(
                    "stored {key} ({} records, {} -> {} bytes)",
                    info.records, info.raw_bytes, info.encoded_bytes
                );
                stored += 1;
            }
            Err(e) => {
                eprintln!("store put {key}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{stored} correct-run traces stored in {dir}");
    ExitCode::SUCCESS
}
