//! Shared, clap-free parsing for the network flags `act serve`,
//! `act gate`, and `act request` all take.
//!
//! One code path validates every numeric flag, so the three daemons-and-
//! client subcommands reject `0` and garbage with the same message
//! instead of each carrying its own slightly different closure:
//!
//! ```text
//! --connect-timeout MS   TCP connect timeout
//! --io-timeout MS        per-read/write socket timeout
//! --retry MS             retry once after a failure/BUSY, backoff MS
//! ```

use crate::Args;
use std::process::ExitCode;
use std::time::Duration;

/// Parse `--{flag} N` as a count, requiring `N >= 1`. Absent means
/// `default`; `0` and non-numbers are rejected with a clear message.
pub fn parse_count(args: &Args, flag: &str, default: usize) -> Result<usize, ExitCode> {
    match args.flags.get(flag) {
        None => Ok(default),
        Some(raw) => match raw.parse::<usize>() {
            Ok(0) => {
                eprintln!("--{flag} must be at least 1 (got 0)");
                Err(ExitCode::from(2))
            }
            Ok(n) => Ok(n),
            Err(_) => {
                eprintln!("--{flag} expects a positive integer, got `{raw}`");
                Err(ExitCode::from(2))
            }
        },
    }
}

/// The transport knobs shared by every networked subcommand.
pub struct NetOpts {
    /// `--connect-timeout MS` (TCP connect).
    pub connect_timeout: Duration,
    /// `--io-timeout MS` (each socket read/write).
    pub io_timeout: Duration,
    /// `--retry MS`: retry once after a transport failure or `BUSY`,
    /// sleeping a jittered `MS` first. `None` = fail fast.
    pub retry: Option<Duration>,
}

impl NetOpts {
    /// Parse the shared flags, with per-command millisecond defaults
    /// (a gateway probes fast; a client waits out a cold TRAIN).
    pub fn from_args(
        args: &Args,
        default_connect_ms: usize,
        default_io_ms: usize,
    ) -> Result<NetOpts, ExitCode> {
        let connect = parse_count(args, "connect-timeout", default_connect_ms)?;
        let io = parse_count(args, "io-timeout", default_io_ms)?;
        let retry = match args.flags.get("retry") {
            None => None,
            Some(_) => Some(Duration::from_millis(parse_count(args, "retry", 100)? as u64)),
        };
        Ok(NetOpts {
            connect_timeout: Duration::from_millis(connect as u64),
            io_timeout: Duration::from_millis(io as u64),
            retry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_args;

    fn args_of(raw: &[&str]) -> Args {
        parse_args(&raw.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn absent_flags_fall_back_to_the_given_defaults() {
        let opts = NetOpts::from_args(&args_of(&[]), 2_000, 30_000).expect("defaults parse");
        assert_eq!(opts.connect_timeout, Duration::from_millis(2_000));
        assert_eq!(opts.io_timeout, Duration::from_millis(30_000));
        assert!(opts.retry.is_none(), "no --retry means fail fast");
    }

    #[test]
    fn explicit_values_override_defaults() {
        let args = args_of(&["--connect-timeout", "250", "--io-timeout", "9000", "--retry", "40"]);
        let opts = NetOpts::from_args(&args, 2_000, 30_000).expect("flags parse");
        assert_eq!(opts.connect_timeout, Duration::from_millis(250));
        assert_eq!(opts.io_timeout, Duration::from_millis(9_000));
        assert_eq!(opts.retry, Some(Duration::from_millis(40)));
    }

    #[test]
    fn zero_is_rejected_for_every_net_flag() {
        for flag in ["connect-timeout", "io-timeout", "retry"] {
            let switch = format!("--{flag}");
            let args = args_of(&[switch.as_str(), "0"]);
            assert!(
                NetOpts::from_args(&args, 1_000, 1_000).is_err(),
                "--{flag} 0 must be rejected"
            );
        }
    }

    #[test]
    fn garbage_is_rejected_for_every_net_flag() {
        for flag in ["connect-timeout", "io-timeout", "retry"] {
            for bad in ["abc", "-5", "1.5", ""] {
                let switch = format!("--{flag}");
                let args = args_of(&[switch.as_str(), bad]);
                assert!(
                    NetOpts::from_args(&args, 1_000, 1_000).is_err(),
                    "--{flag} {bad:?} must be rejected"
                );
            }
        }
    }

    #[test]
    fn counts_reject_zero_and_garbage_but_accept_numbers() {
        let ok = args_of(&["--queue-depth", "128"]);
        assert_eq!(parse_count(&ok, "queue-depth", 64).ok(), Some(128));
        assert_eq!(parse_count(&args_of(&[]), "queue-depth", 64).ok(), Some(64));
        assert!(parse_count(&args_of(&["--queue-depth", "0"]), "queue-depth", 64).is_err());
        assert!(parse_count(&args_of(&["--queue-depth", "many"]), "queue-depth", 64).is_err());
    }
}
