//! Property-based tests for ACT's core analyses.

// Property suites are opt-in: run with `--features slow-tests` (they use
// the in-tree proptest shim, so they work offline too).
#![cfg(feature = "slow-tests")]

use act_core::encoding::{Encoder, FEATURES_PER_DEP};
use act_core::module::DebugEntry;
use act_core::postprocess::postprocess;
use act_sim::events::RawDep;
use act_trace::correct_set::CorrectSet;
use proptest::prelude::*;

fn arb_dep() -> impl Strategy<Value = RawDep> {
    (0u32..200, 0u32..200, any::<bool>()).prop_map(|(s, l, i)| RawDep {
        store_pc: s,
        load_pc: l,
        inter_thread: i,
    })
}

proptest! {
    /// Encodings are total functions into [0,1]^k and injective-modulo-hash:
    /// equal deps encode equal, and the positional features alone already
    /// distinguish deps with different pcs.
    #[test]
    fn encoding_is_bounded_and_stable(dep in arb_dep(), code_len in 1usize..2048) {
        let enc = Encoder::new(code_len.max(200));
        let x = enc.encode_seq(&[dep]);
        prop_assert_eq!(x.len(), FEATURES_PER_DEP);
        prop_assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        prop_assert_eq!(x.clone(), enc.encode_seq(&[dep]));
    }

    /// The scratch-buffer encode paths are bit-identical to the allocating
    /// one, whatever state the reused buffer is in: `encode_seq_into` (and
    /// the iterator-fed `encode_iter_into` behind it) must reshape and
    /// fully overwrite the buffer, never blend in stale contents.
    #[test]
    fn scratch_encode_matches_encode_seq(
        deps in prop::collection::vec(arb_dep(), 1..8),
        code_len in 1usize..2048,
        stale in prop::collection::vec(-2.0f32..2.0, 0..48),
    ) {
        let enc = Encoder::new(code_len);
        let fresh = enc.encode_seq(&deps);
        let mut buf = stale.clone();
        enc.encode_seq_into(&deps, &mut buf);
        prop_assert_eq!(&buf, &fresh);
        // Iterator path, fed non-contiguously (as the IGB ring does).
        let mut buf2 = stale;
        enc.encode_iter_into((0..deps.len()).map(|i| deps[i]), &mut buf2);
        prop_assert_eq!(&buf2, &fresh);
        // Steady state: re-encoding into the same buffer is stable.
        enc.encode_seq_into(&deps, &mut buf2);
        prop_assert_eq!(&buf2, &fresh);
    }

    /// Postprocess invariants: every pruned sequence was in the correct
    /// set; ranking is sorted by matched desc then output asc; rank_where
    /// finds only surviving sequences.
    #[test]
    fn postprocess_orders_and_prunes(
        entries in prop::collection::vec(
            (prop::collection::vec(arb_dep(), 2), 0.0f32..0.5, 0u64..1000),
            0..40
        ),
        correct in prop::collection::vec(prop::collection::vec(arb_dep(), 2), 0..10),
    ) {
        let mut set = CorrectSet::default();
        for c in &correct {
            set.insert(c);
        }
        let debug: Vec<DebugEntry> = entries
            .iter()
            .map(|(deps, output, cycle)| DebugEntry {
                deps: deps.clone(),
                output: *output,
                cycle: *cycle,
                tid: 0,
            })
            .collect();
        let diag = postprocess(&debug, &set);
        // No survivor is in the correct set.
        for r in &diag.ranked {
            prop_assert!(!set.contains(&r.deps));
            prop_assert!(r.matched <= r.deps.len());
        }
        // Ordering.
        for w in diag.ranked.windows(2) {
            prop_assert!(
                w[0].matched > w[1].matched
                    || (w[0].matched == w[1].matched && w[0].output <= w[1].output)
            );
        }
        // Accounting.
        prop_assert_eq!(diag.distinct, diag.ranked.len() + diag.pruned);
        prop_assert!(diag.total_logged >= diag.distinct);
    }
}
