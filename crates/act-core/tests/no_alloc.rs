//! Steady-state allocation audit for the end-to-end classify path:
//! window → encode → predict (→ train), the loop `ActModule::process`,
//! `classify_trace`, and the online trainer all run per retired RAW
//! dependence. The contract (DESIGN.md § Performance) is that after
//! warm-up — one reshape of the scratch vector to the window width — the
//! path never touches the heap.
//!
//! This file holds exactly one `#[test]` so no sibling test thread
//! allocates concurrently and trips the counter.

//! The loop also runs with observability enabled — a per-prediction
//! `LocalCounter` flushed amortized into a registered `act-obs` counter —
//! pinning that the obs layer keeps the same zero-allocation contract.

use act_core::encoding::{Encoder, FEATURES_PER_DEP};
use act_nn::network::{Network, Topology};
use act_obs::{LocalCounter, Registry};
use act_sim::events::RawDep;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn classify_and_online_train_do_not_allocate_in_steady_state() {
    const SEQ_LEN: usize = 2;
    const IGB_CAP: usize = 8;
    let enc = Encoder::new(4096);
    let mut net = Network::random(Topology::new(FEATURES_PER_DEP * SEQ_LEN, 10), 0.2, 42);
    let deps: Vec<RawDep> = (0..64)
        .map(|i| RawDep {
            store_pc: 100 + (i * 37) % 1500,
            load_pc: 200 + (i * 53) % 1500,
            inter_thread: i % 3 == 0,
        })
        .collect();

    // Observability enabled: registration (cold) may allocate, recording
    // (hot) must not. The shape mirrors ActModule: a local counter per
    // prediction, flushed to the shared cell on the check interval.
    let registry = Registry::new();
    let predictions = registry.counter("predictions");
    let mut local = LocalCounter::default();

    // The module's IGB shape: a masked ring fed one dependence at a time,
    // the window encoded straight out of it.
    let mut igb = [deps[0]; IGB_CAP];
    let mut x: Vec<f32> = Vec::new();
    let mut pushed = 0usize;
    let mut step = |igb: &mut [RawDep; IGB_CAP], x: &mut Vec<f32>, net: &mut Network| -> f32 {
        igb[pushed % IGB_CAP] = deps[pushed % deps.len()];
        pushed += 1;
        if pushed < SEQ_LEN {
            return 0.0;
        }
        let start = pushed - SEQ_LEN;
        let window = (0..SEQ_LEN).map(|k| igb[(start + k) % IGB_CAP]);
        enc.encode_iter_into(window, x);
        local.inc();
        if pushed % 200 == 0 {
            local.flush(&predictions);
        }
        let o = net.predict(x);
        if pushed % 4 == 0 {
            net.train(x, 1.0)
        } else {
            o
        }
    };

    // Warm up: the scratch vector reshapes to the window width once.
    for _ in 0..16 {
        step(&mut igb, &mut x, &mut net);
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    let mut sink = 0.0f32;
    for _ in 0..2000 {
        sink += step(&mut igb, &mut x, &mut net);
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert!(sink.is_finite());
    assert_eq!(
        after - before,
        0,
        "{} heap allocations across 2000 steady-state classify/train steps",
        after - before
    );
}
