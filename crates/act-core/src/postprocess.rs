//! Offline postprocessing (§III-D): prune the debug buffer against the
//! Correct Set, then rank the surviving sequences by matched-dependence
//! count (descending), breaking ties by the most negative network output.

use crate::module::DebugEntry;
use act_sim::events::{RawDep, ThreadId};
use act_trace::correct_set::CorrectSet;
use std::collections::HashMap;

/// A ranked candidate root cause.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedSequence {
    /// The invalid dependence sequence, oldest first.
    pub deps: Vec<RawDep>,
    /// The most negative network output observed for this sequence.
    pub output: f32,
    /// Number of leading dependences that match a correct sequence.
    pub matched: usize,
    /// Cycle of the most recent occurrence.
    pub cycle: u64,
    /// Thread of the most recent occurrence.
    pub tid: ThreadId,
    /// Times the sequence appeared in the debug buffer.
    pub occurrences: usize,
}

impl RankedSequence {
    /// The dependence at the first mismatch position — usually the buggy
    /// communication itself.
    pub fn mismatched_dep(&self) -> Option<&RawDep> {
        self.deps.get(self.matched.min(self.deps.len().saturating_sub(1)))
    }
}

/// The result of postprocessing a failure's debug buffer.
#[derive(Debug, Clone, Default)]
pub struct Diagnosis {
    /// Candidate root causes, most likely first.
    pub ranked: Vec<RankedSequence>,
    /// Debug-buffer entries examined.
    pub total_logged: usize,
    /// Distinct sequences among them.
    pub distinct: usize,
    /// Sequences removed because they appeared in correct runs.
    pub pruned: usize,
}

impl Diagnosis {
    /// Percentage of distinct sequences removed by pruning (Table V
    /// "Filter (%)").
    pub fn filter_pct(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            100.0 * self.pruned as f64 / self.distinct as f64
        }
    }

    /// 1-based rank of the first sequence satisfying `matcher`
    /// (e.g. "contains the known buggy dependence").
    pub fn rank_where<F>(&self, mut matcher: F) -> Option<usize>
    where
        F: FnMut(&RankedSequence) -> bool,
    {
        self.ranked.iter().position(|s| matcher(s)).map(|i| i + 1)
    }
}

/// Prune and rank the debug-buffer contents against the Correct Set.
pub fn postprocess(entries: &[DebugEntry], correct: &CorrectSet) -> Diagnosis {
    // Deduplicate identical sequences, keeping the most negative output and
    // the most recent occurrence.
    let mut dedup: HashMap<Vec<RawDep>, RankedSequence> = HashMap::new();
    for e in entries {
        dedup
            .entry(e.deps.clone())
            .and_modify(|r| {
                r.output = r.output.min(e.output);
                if e.cycle > r.cycle {
                    r.cycle = e.cycle;
                    r.tid = e.tid;
                }
                r.occurrences += 1;
            })
            .or_insert_with(|| RankedSequence {
                deps: e.deps.clone(),
                output: e.output,
                matched: 0,
                cycle: e.cycle,
                tid: e.tid,
                occurrences: 1,
            });
    }
    let distinct = dedup.len();

    // Prune sequences that occur in correct executions.
    let mut survivors: Vec<RankedSequence> =
        dedup.into_values().filter(|r| !correct.contains(&r.deps)).collect();
    let pruned = distinct - survivors.len();

    // Rank: most matched dependences first; ties by most negative output;
    // final tie-break by recency then content for determinism.
    for r in &mut survivors {
        r.matched = correct.matched_prefix(&r.deps);
    }
    survivors.sort_by(|a, b| {
        b.matched
            .cmp(&a.matched)
            .then_with(|| a.output.partial_cmp(&b.output).unwrap_or(std::cmp::Ordering::Equal))
            .then_with(|| b.cycle.cmp(&a.cycle))
            .then_with(|| a.deps.cmp(&b.deps))
    });

    Diagnosis { ranked: survivors, total_logged: entries.len(), distinct, pruned }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(s: u32, l: u32) -> RawDep {
        RawDep { store_pc: s, load_pc: l, inter_thread: false }
    }

    fn entry(deps: Vec<RawDep>, output: f32, cycle: u64) -> DebugEntry {
        DebugEntry { deps, output, cycle, tid: 0 }
    }

    fn correct_set(seqs: &[Vec<RawDep>]) -> CorrectSet {
        let mut set = CorrectSet::default();
        for s in seqs {
            set.insert(s);
        }
        set
    }

    #[test]
    fn paper_ranking_example() {
        // Correct Set: (A1,A2,A3), (B1,B2,B3).
        let a1 = dep(1, 10);
        let a2 = dep(2, 20);
        let a3 = dep(3, 30);
        let a4 = dep(4, 40);
        let a5 = dep(5, 50);
        let a6 = dep(6, 60);
        let b1 = dep(7, 70);
        let b2 = dep(8, 80);
        let b3 = dep(9, 90);
        let correct = correct_set(&[vec![a1, a2, a3], vec![b1, b2, b3]]);

        let entries = vec![
            entry(vec![a1, a2, a4], 0.3, 10),
            entry(vec![b1, b2, b3], 0.4, 20),
            entry(vec![a1, a5, a6], 0.2, 30),
        ];
        let diag = postprocess(&entries, &correct);
        // (B1,B2,B3) pruned.
        assert_eq!(diag.pruned, 1);
        assert_eq!(diag.ranked.len(), 2);
        // (A1,A2,A4) has 2 matches, ranks first; (A1,A5,A6) has 1.
        assert_eq!(diag.ranked[0].deps, vec![a1, a2, a4]);
        assert_eq!(diag.ranked[0].matched, 2);
        assert_eq!(diag.ranked[1].deps, vec![a1, a5, a6]);
        assert_eq!(diag.ranked[1].matched, 1);
        // The mismatched dependence of the top candidate is A4.
        assert_eq!(diag.ranked[0].mismatched_dep(), Some(&a4));
        // filter_pct = 1/3.
        assert!((diag.filter_pct() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn ties_break_by_most_negative_output() {
        let correct = correct_set(&[vec![dep(1, 1), dep(2, 2)]]);
        let entries = vec![
            entry(vec![dep(1, 1), dep(9, 9)], 0.45, 10),
            entry(vec![dep(1, 1), dep(8, 8)], 0.10, 20),
        ];
        let diag = postprocess(&entries, &correct);
        assert_eq!(diag.ranked[0].deps[1], dep(8, 8), "lower output ranks first");
    }

    #[test]
    fn duplicates_merge_keeping_min_output() {
        let correct = CorrectSet::default();
        let entries = vec![
            entry(vec![dep(1, 1)], 0.4, 10),
            entry(vec![dep(1, 1)], 0.2, 30),
            entry(vec![dep(1, 1)], 0.3, 20),
        ];
        let diag = postprocess(&entries, &correct);
        assert_eq!(diag.total_logged, 3);
        assert_eq!(diag.distinct, 1);
        assert_eq!(diag.ranked.len(), 1);
        assert_eq!(diag.ranked[0].occurrences, 3);
        assert!((diag.ranked[0].output - 0.2).abs() < 1e-6);
        assert_eq!(diag.ranked[0].cycle, 30);
    }

    #[test]
    fn rank_where_finds_position() {
        let correct = correct_set(&[vec![dep(1, 1), dep(2, 2)]]);
        let entries = vec![
            entry(vec![dep(1, 1), dep(9, 9)], 0.45, 10),
            entry(vec![dep(5, 5), dep(6, 6)], 0.10, 20),
        ];
        let diag = postprocess(&entries, &correct);
        // First entry matched=1, second matched=0 -> first ranks 1.
        let rank = diag.rank_where(|s| s.deps.contains(&dep(9, 9)));
        assert_eq!(rank, Some(1));
        let rank = diag.rank_where(|s| s.deps.contains(&dep(6, 6)));
        assert_eq!(rank, Some(2));
        assert_eq!(diag.rank_where(|s| s.deps.contains(&dep(7, 7))), None);
    }

    #[test]
    fn empty_buffer_gives_empty_diagnosis() {
        let diag = postprocess(&[], &CorrectSet::default());
        assert!(diag.ranked.is_empty());
        assert_eq!(diag.filter_pct(), 0.0);
    }
}
