//! ACT configuration (paper Table III, "Parameters of ACT Module").

use act_nn::error::ConfigError;
use act_nn::pipeline::PipelineConfig;
use act_nn::trainer::{SearchSpace, TrainConfig};

/// Full configuration of the ACT mechanism.
#[derive(Debug, Clone)]
pub struct ActConfig {
    /// Maximum inputs per neuron, `M`. With five features per dependence
    /// this caps the sequence length at `M / 5`.
    pub max_inputs: usize,
    /// Input-generator-buffer capacity (recent dependences kept per core).
    pub igb_capacity: usize,
    /// Debug-buffer capacity (recent invalid sequences kept per core).
    pub debug_capacity: usize,
    /// Misprediction-rate threshold for switching between online testing and
    /// training (paper: 5%).
    pub mispred_threshold: f64,
    /// Number of predictions between misprediction-rate checks.
    pub check_interval: u64,
    /// Hardware pipeline parameters (multiply-add units, FIFO size, ...).
    pub pipeline: PipelineConfig,
    /// Topology search space for offline training.
    pub search: SearchSpace,
    /// Back-propagation hyper-parameters.
    pub train: TrainConfig,
    /// Fraction of collected traces held out for topology evaluation.
    pub test_fraction: f64,
    /// Cap on examples used per candidate during topology search (the full
    /// example set is still used for per-thread fine-tuning). Keeps the
    /// `M²` search tractable on dependence-heavy workloads.
    pub max_search_examples: usize,
    /// Worker threads for the offline topology search: the `(seq_len,
    /// hidden)` candidate grid fans across this many threads. `1` runs
    /// serially; any value produces a byte-identical outcome (see
    /// `act_nn::trainer::topology_search_with_workers`).
    pub search_workers: usize,
    /// Code length to normalize instruction addresses by; `0` means "use
    /// the program's actual length". Workloads that grow (new code
    /// appended) fix this to a constant so old code's features stay put.
    pub norm_code_len: usize,
    /// Cross negatives synthesized per training window, in addition to the
    /// paper's previous-writer negative (0 disables; see DESIGN.md §5).
    pub cross_negs: usize,
    /// Noise negatives added per training set, as a fraction of its size
    /// (0.0 disables the default-invalid prior's data component).
    pub noise_fraction: f64,
}

impl Default for ActConfig {
    fn default() -> Self {
        ActConfig {
            max_inputs: 10,
            igb_capacity: 50,
            debug_capacity: 60,
            mispred_threshold: 0.05,
            check_interval: 200,
            pipeline: PipelineConfig::default(),
            // Five features per dependence and M = 10 inputs cap the
            // sequence length at 2 (the paper's two-feature-per-dep sweep
            // reaches 5; see DESIGN.md on the encoding substitution).
            search: SearchSpace { seq_lens: (1..=2).collect(), ..SearchSpace::default() },
            train: TrainConfig::default(),
            test_fraction: 0.5,
            max_search_examples: 4000,
            search_workers: 1,
            norm_code_len: 0,
            cross_negs: 4,
            noise_fraction: 1.0 / 3.0,
        }
    }
}

impl ActConfig {
    /// Validate internal consistency, naming the offending field on
    /// failure: non-zero buffer sizes, a threshold inside `(0, 1)`, and a
    /// search space whose sequences fit the hardware's input capacity.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_inputs == 0 {
            return Err(ConfigError::new("max_inputs", "must be at least 1"));
        }
        if self.igb_capacity == 0 {
            return Err(ConfigError::new("igb_capacity", "must be at least 1"));
        }
        if self.debug_capacity == 0 {
            return Err(ConfigError::new("debug_capacity", "must be at least 1"));
        }
        if !(self.mispred_threshold > 0.0 && self.mispred_threshold < 1.0) {
            return Err(ConfigError::new("mispred_threshold", "must be inside (0, 1)"));
        }
        if self.check_interval == 0 {
            return Err(ConfigError::new("check_interval", "must be at least 1"));
        }
        self.pipeline.validate()?;
        let max_n = self.max_inputs / crate::encoding::FEATURES_PER_DEP;
        if !self.search.seq_lens.iter().all(|&n| n >= 1 && n <= max_n) {
            return Err(ConfigError::new(
                "search.seq_lens",
                format!("sequence lengths must fit the neuron's {} inputs", self.max_inputs),
            ));
        }
        if !(self.test_fraction > 0.0 && self.test_fraction < 1.0) {
            return Err(ConfigError::new("test_fraction", "must be inside (0, 1)"));
        }
        if self.search_workers == 0 {
            return Err(ConfigError::new("search_workers", "must be at least 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = ActConfig::default();
        c.validate().expect("default config is valid");
        assert_eq!(c.max_inputs, 10);
        assert_eq!(c.igb_capacity, 50);
        assert_eq!(c.debug_capacity, 60);
        assert!((c.mispred_threshold - 0.05).abs() < 1e-12);
        assert!((c.train.learning_rate - 0.2).abs() < 1e-6);
        assert_eq!(c.search.seq_lens, vec![1, 2]);
        assert_eq!(c.search.hidden_sizes.len(), 10);
    }

    #[test]
    fn oversized_sequences_rejected() {
        let mut c = ActConfig::default();
        c.search.seq_lens = vec![3]; // 15 inputs > M=10
        let err = c.validate().unwrap_err();
        assert_eq!(err.field, "search.seq_lens");
        assert!(err.to_string().contains("sequence lengths"), "{err}");
    }

    #[test]
    fn validation_names_fields_instead_of_panicking() {
        let cases: [(&str, fn(&mut ActConfig)); 4] = [
            ("igb_capacity", |c| c.igb_capacity = 0),
            ("mispred_threshold", |c| c.mispred_threshold = 1.5),
            ("search_workers", |c| c.search_workers = 0),
            ("fifo_capacity", |c| c.pipeline.fifo_capacity = 0),
        ];
        for (field, break_it) in cases {
            let mut c = ActConfig::default();
            break_it(&mut c);
            assert_eq!(c.validate().unwrap_err().field, field);
        }
    }
}
