//! End-to-end diagnosis workflow: run a program with ACT modules attached,
//! collect the per-core debug buffers, build a Correct Set from fresh
//! correct executions, and postprocess into a ranked diagnosis — all
//! without ever reproducing the failure.

use crate::config::ActConfig;
use crate::module::{ActModule, DebugEntry, ModuleStats};
use crate::postprocess::{postprocess, Diagnosis};
use crate::weights::SharedWeightStore;
use act_nn::pipeline::PipelineStats;
use act_sim::config::MachineConfig;
use act_sim::machine::Machine;
use act_sim::outcome::RunOutcome;
use act_sim::program::Program;
use act_sim::stats::Stats;
use act_trace::correct_set::CorrectSet;
use act_trace::input_gen::positive_sequences;
use act_trace::raw::observed_deps;
use std::cell::RefCell;
use std::rc::Rc;

/// Everything a monitored (production) run produced.
#[derive(Debug, Clone)]
pub struct ActRun {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Debug-buffer contents merged across cores, in time order.
    pub debug: Vec<DebugEntry>,
    /// Machine statistics (cycles, stalls, cache behaviour).
    pub machine_stats: Stats,
    /// Per-core ACT module statistics.
    pub module_stats: Vec<ModuleStats>,
    /// Per-core pipeline statistics.
    pub pipeline_stats: Vec<PipelineStats>,
}

impl ActRun {
    /// Position of the first debug entry satisfying `matcher`, counted
    /// backwards from the most recent entry (1 = newest). This is the
    /// paper's "Debug Buf. Pos." column: how deep in the buffer the buggy
    /// sequence sat when the failure happened.
    pub fn debug_position_where<F>(&self, mut matcher: F) -> Option<usize>
    where
        F: FnMut(&DebugEntry) -> bool,
    {
        self.debug.iter().rev().position(|e| matcher(e)).map(|i| i + 1)
    }
}

/// Run `program` once with an ACT module attached to every core.
///
/// `store` carries the offline-trained weights in and the online-retrained
/// weights out (the paper's binary patching on thread exit).
pub fn run_with_act(
    program: &Program,
    machine_cfg: MachineConfig,
    act_cfg: &ActConfig,
    store: &SharedWeightStore,
) -> ActRun {
    let mut machine = Machine::new(program, machine_cfg);
    let norm = if act_cfg.norm_code_len > 0 { act_cfg.norm_code_len } else { program.code_len() };
    let modules: Vec<Rc<RefCell<ActModule>>> = (0..machine.stats().cores.len())
        .map(|_| Rc::new(RefCell::new(ActModule::new(act_cfg.clone(), norm, store.clone()))))
        .collect();
    for (i, m) in modules.iter().enumerate() {
        machine.attach(i, Box::new(m.clone()));
    }
    let outcome = machine.run();
    let machine_stats = machine.stats().clone();

    let mut debug: Vec<DebugEntry> = Vec::new();
    let mut module_stats = Vec::new();
    let mut pipeline_stats = Vec::new();
    for m in &modules {
        let m = m.borrow();
        debug.extend(m.debug_buffer().entries().cloned());
        module_stats.push(m.stats());
        pipeline_stats.push(m.pipeline_stats());
    }
    debug.sort_by_key(|e| e.cycle);

    ActRun { outcome, debug, machine_stats, module_stats, pipeline_stats }
}

/// Build the Correct Set by running `program` a few more times (the paper
/// uses ~20) with fresh seeds and keeping sequences from runs `is_correct`
/// accepts. The failure is *not* reproduced — these are correct executions.
pub fn build_correct_set<F>(
    program: &Program,
    base: &MachineConfig,
    seeds: impl IntoIterator<Item = u64>,
    seq_len: usize,
    is_correct: F,
) -> CorrectSet
where
    F: FnMut(&RunOutcome) -> bool,
{
    let traces = crate::offline::collect_traces(program, base, seeds, is_correct);
    let mut set = CorrectSet::default();
    for t in &traces {
        let deps = observed_deps(t);
        for s in positive_sequences(&deps, seq_len) {
            set.insert(&s.deps);
        }
    }
    set
}

/// Prune and rank a failed run's debug buffer against the Correct Set.
pub fn diagnose(run: &ActRun, correct: &CorrectSet) -> Diagnosis {
    postprocess(&run.debug, correct)
}

/// Replay a *shipped* failing trace through trained per-thread networks and
/// return the sequences they classify invalid, as debug-buffer entries.
///
/// This is the service-side counterpart of the online module: a production
/// machine that ran without ACT hardware can still ship its failing trace
/// (`act-trace::io`) to a diagnosis service, which reconstructs what the
/// module's debug buffer would have held — every length-`N` per-thread
/// dependence window whose network output falls below `threshold` (the
/// module's 0.5 decision boundary).
///
/// `norm_code_len` must be the code length the store was *trained* with
/// (trace and training encodings must agree); the trace's own `code_len` is
/// ignored for exactly that reason.
///
/// # Panics
///
/// Panics if `norm_code_len == 0` or the store's sequence length is 0.
pub fn classify_trace(
    store: &crate::weights::WeightStore,
    trace: &act_trace::event::Trace,
    norm_code_len: usize,
    threshold: f32,
) -> Vec<DebugEntry> {
    use std::collections::HashMap;
    let enc = crate::encoding::Encoder::new(norm_code_len);
    let deps = observed_deps(trace);
    // The final load's cycle, by global sequence number (SeqSample carries
    // the seq of its final load; DebugEntry wants the cycle).
    let cycle_of: HashMap<u64, u64> = trace.records.iter().map(|r| (r.seq, r.cycle)).collect();
    let mut nets: HashMap<act_sim::events::ThreadId, act_nn::network::Network> = HashMap::new();
    let mut entries = Vec::new();
    // One encode buffer for every window: the per-window loop allocates
    // only for flagged sequences (same discipline as the online module).
    let mut x = Vec::new();
    for s in positive_sequences(&deps, store.seq_len()) {
        let net = nets.entry(s.tid).or_insert_with(|| store.network_for(s.tid, 0.0));
        enc.encode_seq_into(&s.deps, &mut x);
        let output = net.predict(&x);
        if output < threshold {
            entries.push(DebugEntry {
                deps: s.deps,
                output,
                cycle: cycle_of.get(&s.seq).copied().unwrap_or(0),
                tid: s.tid,
            });
        }
    }
    entries
}

/// How many windows [`classify_trace_batch`] feeds to one
/// [`act_nn::network::Network::predict_batch`] call. Bounds the network's
/// batch scratch (so the steady state allocates nothing) while still
/// amortizing weight loads across a whole tile of windows.
pub const CLASSIFY_BATCH: usize = 64;

/// Batched [`classify_trace`]: classify several shipped traces against the
/// same trained `store` in one pass, returning one entry vector per trace
/// (same order). **Bit-identical** to calling `classify_trace` on each
/// trace in turn: every window's features go through
/// [`act_nn::network::Network::predict_batch`], whose per-element float
/// ops are exactly `predict`'s, and entries are emitted in the original
/// window order per trace.
///
/// What the batching amortizes: per-thread networks are built once for
/// the whole batch (not once per trace), and windows are grouped per
/// thread into [`CLASSIFY_BATCH`]-sized matrix-matrix blocks so the
/// hidden-layer weights are loaded once per block of four windows instead
/// of once per window.
///
/// # Panics
///
/// Panics if `norm_code_len == 0` or the store's sequence length is 0.
pub fn classify_trace_batch(
    store: &crate::weights::WeightStore,
    traces: &[&act_trace::event::Trace],
    norm_code_len: usize,
    threshold: f32,
) -> Vec<Vec<DebugEntry>> {
    use std::collections::HashMap;
    let enc = crate::encoding::Encoder::new(norm_code_len);
    let mut nets: HashMap<act_sim::events::ThreadId, act_nn::network::Network> = HashMap::new();
    // Reused across traces: per-thread feature batches, window outputs,
    // and the per-window encode buffer.
    let mut groups: HashMap<act_sim::events::ThreadId, (Vec<f32>, Vec<usize>)> = HashMap::new();
    let mut outputs: Vec<f32> = Vec::new();
    let mut batch_out: Vec<f32> = Vec::new();
    let mut x = Vec::new();
    let mut results = Vec::with_capacity(traces.len());
    for trace in traces {
        let deps = observed_deps(trace);
        let cycle_of: HashMap<u64, u64> = trace.records.iter().map(|r| (r.seq, r.cycle)).collect();
        let samples = positive_sequences(&deps, store.seq_len());
        for (xs, idx) in groups.values_mut() {
            xs.clear();
            idx.clear();
        }
        for (i, s) in samples.iter().enumerate() {
            let (xs, idx) = groups.entry(s.tid).or_default();
            enc.encode_seq_into(&s.deps, &mut x);
            xs.extend_from_slice(&x);
            idx.push(i);
        }
        outputs.clear();
        outputs.resize(samples.len(), 0.0);
        let width = x.len().max(1);
        for (tid, (xs, idx)) in groups.iter() {
            if idx.is_empty() {
                continue;
            }
            let net = nets.entry(*tid).or_insert_with(|| store.network_for(*tid, 0.0));
            for (chunk, ids) in xs.chunks(CLASSIFY_BATCH * width).zip(idx.chunks(CLASSIFY_BATCH)) {
                batch_out.clear();
                net.predict_batch(chunk, &mut batch_out);
                for (&i, &o) in ids.iter().zip(&batch_out) {
                    outputs[i] = o;
                }
            }
        }
        let mut entries = Vec::new();
        for (i, s) in samples.into_iter().enumerate() {
            if outputs[i] < threshold {
                entries.push(DebugEntry {
                    deps: s.deps,
                    output: outputs[i],
                    cycle: cycle_of.get(&s.seq).copied().unwrap_or(0),
                    tid: s.tid,
                });
            }
        }
        results.push(entries);
    }
    results
}

/// Batched [`diagnose_trace`]: one ranked [`Diagnosis`] per trace (same
/// order), classified through [`classify_trace_batch`] and postprocessed
/// per trace. Bit-identical to diagnosing each trace individually.
pub fn diagnose_trace_batch(
    store: &crate::weights::WeightStore,
    correct: &CorrectSet,
    traces: &[&act_trace::event::Trace],
    norm_code_len: usize,
) -> Vec<Diagnosis> {
    classify_trace_batch(store, traces, norm_code_len, 0.5)
        .iter()
        .map(|entries| postprocess(entries, correct))
        .collect()
}

/// Full service-side diagnosis of a shipped failing trace: classify every
/// dependence window with the trained `store`, then prune and rank the
/// flagged ones against the Correct Set — the same postprocessing a
/// hardware debug buffer gets.
pub fn diagnose_trace(
    store: &crate::weights::WeightStore,
    correct: &CorrectSet,
    trace: &act_trace::event::Trace,
    norm_code_len: usize,
) -> Diagnosis {
    let entries = classify_trace(store, trace, norm_code_len, 0.5);
    postprocess(&entries, correct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{shared, WeightStore};
    use act_nn::network::Topology;
    use act_sim::asm::Asm;
    use act_sim::events::RawDep;
    use act_sim::isa::{AluOp, Reg};

    const R1: Reg = Reg(1);
    const R2: Reg = Reg(2);
    const R3: Reg = Reg(3);
    const R4: Reg = Reg(4);

    fn looping_program() -> Program {
        let mut a = Asm::new();
        let buf = a.static_zeroed(8);
        a.func("main");
        a.imm(R1, buf as i64);
        a.imm(R2, 0);
        let top = a.label_here();
        a.alui(AluOp::Mul, R3, R2, 8);
        a.add(R3, R1, R3);
        a.store(R2, R3, 0);
        a.load(R4, R3, 0);
        a.addi(R2, R2, 1);
        a.alui(AluOp::Lt, R4, R2, 8);
        a.bnz(R4, top);
        a.out(R2);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn run_with_act_completes_and_collects_stats() {
        let p = looping_program();
        let store =
            shared(WeightStore::new(Topology::new(2 * crate::encoding::FEATURES_PER_DEP, 3), 2, 1));
        let cfg = MachineConfig { jitter_ppm: 0, cores: 2, ..Default::default() };
        let run = run_with_act(&p, cfg, &ActConfig::default(), &store);
        assert!(run.outcome.completed());
        assert_eq!(run.module_stats.len(), 2);
        // The main thread's module made predictions.
        let total: u64 = run.module_stats.iter().map(|s| s.predictions).sum();
        assert!(total > 0);
        // Untrained store -> weights were persisted on thread exit.
        assert!(store.borrow().has_weights(0));
    }

    #[test]
    fn correct_set_built_from_reruns() {
        let p = looping_program();
        let base = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let set = build_correct_set(&p, &base, 1..=3, 2, |o| o.completed());
        assert!(!set.is_empty());
        assert_eq!(set.seq_len(), 2);
    }

    #[test]
    fn diagnose_prunes_correct_sequences() {
        let p = looping_program();
        // Untrained weights: the module starts in training mode and logs
        // whatever it mispredicts. All of those sequences are correct, so a
        // proper Correct Set prunes every one of them.
        let store =
            shared(WeightStore::new(Topology::new(2 * crate::encoding::FEATURES_PER_DEP, 3), 2, 1));
        let cfg = MachineConfig { jitter_ppm: 0, cores: 1, ..Default::default() };
        let run = run_with_act(&p, cfg, &ActConfig::default(), &store);
        let base = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let set = build_correct_set(&p, &base, 1..=3, 2, |o| o.completed());
        let diag = diagnose(&run, &set);
        assert_eq!(
            diag.ranked.len(),
            0,
            "all logged sequences occur in correct runs: {:?}",
            diag.ranked
        );
    }

    #[test]
    fn classify_trace_flags_windows_with_untrained_store() {
        let p = looping_program();
        let base = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let traces = crate::offline::collect_traces(&p, &base, [1], |o| o.completed());
        // Untrained store: default weights are biased invalid, so every
        // window of the shipped trace is flagged.
        let store = WeightStore::new(Topology::new(2 * crate::encoding::FEATURES_PER_DEP, 3), 2, 1);
        let entries = classify_trace(&store, &traces[0], p.code_len(), 0.5);
        assert!(!entries.is_empty(), "untrained networks must flag sequences");
        for e in &entries {
            assert_eq!(e.deps.len(), 2, "windows match the store's seq_len");
            assert!(e.output < 0.5);
        }
    }

    #[test]
    fn diagnose_trace_prunes_correct_sequences() {
        let p = looping_program();
        let base = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let traces = crate::offline::collect_traces(&p, &base, [1], |o| o.completed());
        let store = WeightStore::new(Topology::new(2 * crate::encoding::FEATURES_PER_DEP, 3), 2, 1);
        let set = build_correct_set(&p, &base, 1..=3, 2, |o| o.completed());
        let diag = diagnose_trace(&store, &set, &traces[0], p.code_len());
        assert!(diag.total_logged > 0, "untrained store logs everything");
        assert_eq!(
            diag.ranked.len(),
            0,
            "every sequence of a correct run is in the Correct Set: {:?}",
            diag.ranked
        );
    }

    #[test]
    fn classify_trace_batch_matches_sequential_bit_for_bit() {
        let p = looping_program();
        let base = MachineConfig { jitter_ppm: 0, ..Default::default() };
        // Three traces from different seeds, diagnosed as one batch.
        let traces = crate::offline::collect_traces(&p, &base, [1, 2, 3], |o| o.completed());
        let store = WeightStore::new(Topology::new(2 * crate::encoding::FEATURES_PER_DEP, 3), 2, 1);
        let refs: Vec<&act_trace::event::Trace> = traces.iter().collect();
        let batched = classify_trace_batch(&store, &refs, p.code_len(), 0.5);
        assert_eq!(batched.len(), traces.len());
        for (t, b) in traces.iter().zip(&batched) {
            let seq = classify_trace(&store, t, p.code_len(), 0.5);
            assert_eq!(seq.len(), b.len());
            for (s, e) in seq.iter().zip(b) {
                assert_eq!(s.deps, e.deps);
                assert_eq!(s.output.to_bits(), e.output.to_bits(), "outputs must be bit-equal");
                assert_eq!(s.cycle, e.cycle);
                assert_eq!(s.tid, e.tid);
            }
        }
    }

    #[test]
    fn diagnose_trace_batch_matches_sequential() {
        let p = looping_program();
        let base = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let traces = crate::offline::collect_traces(&p, &base, [1, 2], |o| o.completed());
        let store = WeightStore::new(Topology::new(2 * crate::encoding::FEATURES_PER_DEP, 3), 2, 1);
        let set = build_correct_set(&p, &base, 1..=3, 2, |o| o.completed());
        let refs: Vec<&act_trace::event::Trace> = traces.iter().collect();
        let batched = diagnose_trace_batch(&store, &set, &refs, p.code_len());
        for (t, b) in traces.iter().zip(&batched) {
            let seq = diagnose_trace(&store, &set, t, p.code_len());
            assert_eq!(format!("{seq:?}"), format!("{b:?}"), "diagnosis must match sequential");
        }
    }

    #[test]
    fn classify_trace_batch_handles_the_empty_batch() {
        let store = WeightStore::new(Topology::new(2 * crate::encoding::FEATURES_PER_DEP, 3), 2, 1);
        assert!(classify_trace_batch(&store, &[], 64, 0.5).is_empty());
    }

    #[test]
    fn debug_position_counts_from_newest() {
        let mk = |pc: u32, cycle: u64| DebugEntry {
            deps: vec![RawDep { store_pc: pc, load_pc: pc, inter_thread: false }],
            output: 0.1,
            cycle,
            tid: 0,
        };
        let run = ActRun {
            outcome: RunOutcome::Completed { output: vec![] },
            debug: vec![mk(1, 10), mk(2, 20), mk(3, 30)],
            machine_stats: Stats::new(1),
            module_stats: vec![],
            pipeline_stats: vec![],
        };
        assert_eq!(run.debug_position_where(|e| e.deps[0].store_pc == 3), Some(1));
        assert_eq!(run.debug_position_where(|e| e.deps[0].store_pc == 1), Some(3));
        assert_eq!(run.debug_position_where(|e| e.deps[0].store_pc == 9), None);
    }
}
