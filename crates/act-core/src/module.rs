//! The per-core ACT Module (AM) of §III-C / §IV: input generator buffer,
//! neural network + pipeline, debug buffer, invalid counter, and the
//! controller that alternates between online testing and online training.

use crate::config::ActConfig;
use crate::encoding::Encoder;
use crate::weights::SharedWeightStore;
use act_nn::network::Network;
use act_nn::pipeline::NnPipeline;
use act_sim::attach::CoreAttachment;
use act_sim::events::{LoadEvent, RawDep, ThreadId};
use std::collections::VecDeque;

/// Operating mode of the module (the `Mode` flag of Fig 4(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Verify each dependence sequence; log predicted-invalid ones.
    #[default]
    Testing,
    /// Treat every sequence as correct; back-propagate on predicted-invalid
    /// ones (and still log them, in case one really was the bug).
    Training,
}

/// One logged (predicted-invalid) dependence sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DebugEntry {
    /// The sequence, oldest dependence first.
    pub deps: Vec<RawDep>,
    /// The network output (< 0.5; more negative confidence = closer to 0).
    pub output: f32,
    /// Cycle of the final load.
    pub cycle: u64,
    /// Thread that executed the final load.
    pub tid: ThreadId,
}

/// Fixed-capacity FIFO of recent invalid sequences.
#[derive(Debug, Clone)]
pub struct DebugBuffer {
    entries: VecDeque<DebugEntry>,
    capacity: usize,
    evicted: u64,
}

impl DebugBuffer {
    /// An empty buffer holding up to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        DebugBuffer { entries: VecDeque::with_capacity(capacity), capacity, evicted: 0 }
    }

    /// Record an entry, evicting the oldest when full.
    pub fn push(&mut self, entry: DebugEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(entry);
    }

    /// Entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &DebugEntry> {
        self.entries.iter()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries that have been displaced by newer ones.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// The input generator buffer as a power-of-two ring: a push is one masked
/// store, and the last-`N` window is `N` masked reads. The per-load hot
/// path pays no deque length management — a slot is simply overwritten
/// once the ring wraps, which *is* the IGB's eviction policy.
#[derive(Debug, Clone)]
struct DepRing {
    buf: Box<[RawDep]>,
    mask: usize,
    /// Total pushes since the last clear.
    pushed: u64,
}

impl DepRing {
    fn new(min_capacity: usize) -> Self {
        let zero = RawDep { store_pc: 0, load_pc: 0, inter_thread: false };
        let cap = min_capacity.max(1).next_power_of_two();
        DepRing { buf: vec![zero; cap].into_boxed_slice(), mask: cap - 1, pushed: 0 }
    }

    #[inline]
    fn push(&mut self, dep: RawDep) {
        self.buf[self.pushed as usize & self.mask] = dep;
        self.pushed += 1;
    }

    /// The most recent `n` entries, oldest first, as masked reads.
    #[inline]
    fn last_n(&self, n: usize) -> impl ExactSizeIterator<Item = RawDep> + '_ {
        debug_assert!(n <= self.buf.len() && self.pushed >= n as u64);
        let start = self.pushed as usize - n;
        (0..n).map(move |k| self.buf[(start + k) & self.mask])
    }

    /// Copy the most recent `n` entries, oldest first, into `out`.
    #[inline]
    fn last_n_into(&self, n: usize, out: &mut Vec<RawDep>) {
        out.clear();
        out.extend(self.last_n(n));
    }

    fn clear(&mut self) {
        self.pushed = 0;
    }
}

/// Counters exposed by the module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleStats {
    /// Sequences fed to the network.
    pub predictions: u64,
    /// Sequences predicted invalid.
    pub invalids: u64,
    /// Back-propagation updates performed (online training).
    pub train_updates: u64,
    /// Switches into training mode.
    pub to_training: u64,
    /// Switches back into testing mode.
    pub to_testing: u64,
    /// Loads skipped because no dependence was available (lost metadata).
    pub no_dep_loads: u64,
}

impl ModuleStats {
    /// Lifetime misprediction rate: invalid predictions over all
    /// predictions (0.0 before the first prediction). The mode controller
    /// uses the per-interval rate, not this.
    pub fn mispred_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.invalids as f64 / self.predictions as f64
        }
    }
}

/// The per-core ACT module. Implements [`CoreAttachment`]: the machine
/// offers every retiring load, and the module's input FIFO exerts
/// back-pressure when full.
#[derive(Debug)]
pub struct ActModule {
    cfg: ActConfig,
    encoder: Encoder,
    store: SharedWeightStore,
    seq_len: usize,
    net: Option<Network>,
    cur_tid: Option<ThreadId>,
    pipeline: NnPipeline,
    /// Input generator buffer: recent dependences of the running thread.
    igb: DepRing,
    /// Scratch: the current length-`N` window (reused every prediction).
    seq_scratch: Vec<RawDep>,
    /// Scratch: the encoded input vector (reused every prediction).
    x_scratch: Vec<f32>,
    debug: DebugBuffer,
    mode: Mode,
    invalid_count: u64,
    interval_predictions: u64,
    now: u64,
    stats: ModuleStats,
}

impl ActModule {
    /// Build a module for a program with `code_len` instructions, sharing
    /// `store` with its sibling modules.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ActConfig::validate`] — an invalid config
    /// here is a programmer error; callers taking configs from the outside
    /// (the serve daemon, the CLI) validate first and surface the
    /// [`ConfigError`](act_nn::ConfigError) cleanly.
    pub fn new(cfg: ActConfig, code_len: usize, store: SharedWeightStore) -> Self {
        cfg.validate().expect("valid ActConfig");
        let seq_len = store.borrow().seq_len();
        let pipeline = NnPipeline::new(cfg.pipeline);
        let debug = DebugBuffer::new(cfg.debug_capacity);
        let igb = DepRing::new(cfg.igb_capacity);
        ActModule {
            cfg,
            encoder: Encoder::new(code_len),
            store,
            seq_len,
            net: None,
            cur_tid: None,
            pipeline,
            igb,
            seq_scratch: Vec::new(),
            x_scratch: Vec::new(),
            debug,
            mode: Mode::Testing,
            invalid_count: 0,
            interval_predictions: 0,
            now: 0,
            stats: ModuleStats::default(),
        }
    }

    /// The module's debug buffer.
    pub fn debug_buffer(&self) -> &DebugBuffer {
        &self.debug
    }

    /// Current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Counters.
    pub fn stats(&self) -> ModuleStats {
        self.stats
    }

    /// Pipeline counters (accepted/rejected/serviced).
    pub fn pipeline_stats(&self) -> act_nn::pipeline::PipelineStats {
        self.pipeline.stats()
    }

    /// Export the module's observability view — misprediction rate, mode
    /// flips, IGB occupancy, debug-buffer pressure, and FIFO counters — as
    /// one [`MetricsSnapshot`](act_obs::MetricsSnapshot). The module keeps
    /// plain-field counters on its per-load hot path (no atomics); this
    /// copies them out on demand, which is how the whole stack funnels
    /// into the one snapshot type.
    pub fn metrics_snapshot(&self) -> act_obs::MetricsSnapshot {
        let mut snap = act_obs::MetricsSnapshot::new();
        let s = &self.stats;
        snap.push_counter("predictions", s.predictions);
        snap.push_counter("invalids", s.invalids);
        snap.push_counter("train_updates", s.train_updates);
        snap.push_counter("mode_flips_to_training", s.to_training);
        snap.push_counter("mode_flips_to_testing", s.to_testing);
        snap.push_counter("no_dep_loads", s.no_dep_loads);
        snap.push_gauge("mispred_rate_ppm", (s.mispred_rate() * 1e6) as i64);
        snap.push_gauge("mode_training", matches!(self.mode, Mode::Training) as i64);
        snap.push_gauge("igb_occupancy", self.igb.pushed.min(self.cfg.igb_capacity as u64) as i64);
        snap.push_gauge("igb_capacity", self.cfg.igb_capacity as i64);
        snap.push_gauge("debug_len", self.debug.len() as i64);
        snap.push_gauge("debug_capacity", self.debug.capacity as i64);
        snap.push_counter("debug_evicted", self.debug.evicted());
        let p = self.pipeline.stats();
        snap.push_counter("fifo_accepted", p.accepted);
        snap.push_counter("fifo_rejected", p.rejected);
        snap.push_counter("fifo_serviced", p.serviced);
        snap
    }

    fn set_mode(&mut self, mode: Mode) {
        if self.mode != mode {
            match mode {
                Mode::Training => self.stats.to_training += 1,
                Mode::Testing => self.stats.to_testing += 1,
            }
        }
        self.mode = mode;
        self.pipeline.set_training(mode == Mode::Training);
    }

    /// Periodic misprediction-rate check (§III-C): above the threshold in
    /// testing mode → start training; below it in training mode → resume
    /// testing.
    fn check_interval(&mut self) {
        if self.interval_predictions < self.cfg.check_interval {
            return;
        }
        let rate = self.invalid_count as f64 / self.interval_predictions as f64;
        match self.mode {
            Mode::Testing if rate > self.cfg.mispred_threshold => self.set_mode(Mode::Training),
            Mode::Training if rate < self.cfg.mispred_threshold => self.set_mode(Mode::Testing),
            _ => {}
        }
        self.invalid_count = 0;
        self.interval_predictions = 0;
    }

    /// Process an accepted dependence: form the sequence, predict, and act
    /// per mode.
    fn process(&mut self, dep: RawDep, ev: &LoadEvent) {
        self.igb.push(dep);
        // Warm-up: a window forms once `seq_len` dependences have arrived
        // (and never, if the configured IGB is too small to hold one).
        if self.igb.pushed < self.seq_len as u64 || self.cfg.igb_capacity < self.seq_len {
            return;
        }
        // Steady-state hot path: the window encodes straight out of the
        // ring into a scratch vector, so a prediction allocates and copies
        // nothing. Only a predicted-invalid sequence (rare once trained)
        // materializes the window, for the debug buffer.
        self.encoder.encode_iter_into(self.igb.last_n(self.seq_len), &mut self.x_scratch);
        let net = self.net.as_mut().expect("network loaded while thread runs");

        self.stats.predictions += 1;
        self.interval_predictions += 1;
        let output = net.predict(&self.x_scratch);
        let valid = Network::classify(output);
        if !valid {
            self.stats.invalids += 1;
            self.invalid_count += 1;
            self.igb.last_n_into(self.seq_len, &mut self.seq_scratch);
            self.debug.push(DebugEntry {
                deps: self.seq_scratch.clone(),
                output,
                cycle: ev.cycle,
                tid: ev.tid,
            });
            if self.mode == Mode::Training {
                // During online training every dependence is assumed valid;
                // a predicted-invalid one is a misprediction to learn from.
                net.train(&self.x_scratch, 1.0);
                self.stats.train_updates += 1;
            }
        }
        self.check_interval();
    }
}

impl CoreAttachment for ActModule {
    fn tick(&mut self, cycle: u64) {
        self.now = cycle;
        self.pipeline.tick(cycle);
    }

    fn offer_load(&mut self, ev: &LoadEvent) -> bool {
        if ev.stack_access {
            return true;
        }
        let Some(dep) = ev.dep else {
            // Metadata was unavailable (evicted / clean transfer): the load
            // retires freely and no sequence is formed.
            self.stats.no_dep_loads += 1;
            return true;
        };
        if self.net.is_none() {
            // No thread context (shouldn't happen while a thread runs, but
            // be permissive rather than wedge retirement).
            return true;
        }
        if !self.pipeline.try_accept(self.now) {
            return false;
        }
        self.process(dep, ev);
        true
    }

    fn on_thread_start(&mut self, tid: ThreadId) {
        let store = self.store.borrow();
        let lr = self.cfg.train.learning_rate;
        let known = store.has_weights(tid);
        self.net = Some(store.network_for(tid, lr));
        drop(store);
        self.cur_tid = Some(tid);
        self.igb.clear();
        self.invalid_count = 0;
        self.interval_predictions = 0;
        // A thread without trained weights would mispredict massively; start
        // it directly in training mode (the natural mechanism would get
        // there after one check interval anyway).
        self.set_mode(if known { Mode::Testing } else { Mode::Training });
    }

    fn on_thread_end(&mut self, tid: ThreadId) {
        if let (Some(net), Some(cur)) = (&self.net, self.cur_tid) {
            debug_assert_eq!(cur, tid);
            self.store.borrow_mut().store_weights(tid, net.weights_flat());
        }
        self.net = None;
        self.cur_tid = None;
        self.igb.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{shared, WeightStore};
    use act_nn::network::Topology;
    use act_sim::events::CacheEvent;

    fn load_event(pc: u32, dep: Option<RawDep>, cycle: u64) -> LoadEvent {
        LoadEvent {
            cycle,
            core: 0,
            tid: 0,
            pc,
            addr: 0x2000,
            cache_event: CacheEvent::L1Hit,
            dep,
            stack_access: false,
        }
    }

    fn dep(s: u32, l: u32) -> RawDep {
        RawDep { store_pc: s, load_pc: l, inter_thread: false }
    }

    fn test_cfg() -> ActConfig {
        ActConfig { check_interval: 10, ..Default::default() }
    }

    fn module_with_seq_len(n: usize) -> ActModule {
        let topo = Topology::new(crate::encoding::FEATURES_PER_DEP * n, 3);
        let store = shared(WeightStore::new(topo, n, 7));
        ActModule::new(test_cfg(), 100, store)
    }

    #[test]
    fn debug_buffer_evicts_oldest() {
        let mut b = DebugBuffer::new(2);
        for i in 0..3 {
            b.push(DebugEntry { deps: vec![dep(i, i)], output: 0.1, cycle: i as u64, tid: 0 });
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.evicted(), 1);
        let first = b.entries().next().unwrap();
        assert_eq!(first.deps[0].store_pc, 1);
    }

    #[test]
    fn no_dep_loads_pass_through() {
        let mut m = module_with_seq_len(2);
        m.on_thread_start(0);
        assert!(m.offer_load(&load_event(5, None, 10)));
        assert_eq!(m.stats().no_dep_loads, 1);
        assert_eq!(m.stats().predictions, 0);
    }

    #[test]
    fn stack_loads_pass_through() {
        let mut m = module_with_seq_len(2);
        m.on_thread_start(0);
        let mut ev = load_event(5, Some(dep(1, 5)), 10);
        ev.stack_access = true;
        assert!(m.offer_load(&ev));
        assert_eq!(m.stats().predictions, 0);
    }

    #[test]
    fn sequence_forms_after_warmup() {
        let mut m = module_with_seq_len(3);
        m.on_thread_start(0);
        m.tick(1);
        assert!(m.offer_load(&load_event(5, Some(dep(1, 5)), 1)));
        assert!(m.offer_load(&load_event(6, Some(dep(2, 6)), 1)));
        assert_eq!(m.stats().predictions, 0, "warm-up: fewer than N deps");
        assert!(m.offer_load(&load_event(7, Some(dep(3, 7)), 1)));
        assert_eq!(m.stats().predictions, 1);
    }

    #[test]
    fn unknown_thread_starts_in_training_mode() {
        let mut m = module_with_seq_len(2);
        m.on_thread_start(9);
        assert_eq!(m.mode(), Mode::Training);
    }

    #[test]
    fn known_thread_starts_in_testing_mode() {
        let topo = Topology::new(2 * crate::encoding::FEATURES_PER_DEP, 3);
        let mut ws = WeightStore::new(topo, 2, 7);
        ws.store_weights(3, Network::random(topo, 0.2, 1).weights_flat());
        let store = shared(ws);
        let mut m = ActModule::new(test_cfg(), 100, store);
        m.on_thread_start(3);
        assert_eq!(m.mode(), Mode::Testing);
    }

    #[test]
    fn thread_end_persists_weights() {
        let topo = Topology::new(2 * crate::encoding::FEATURES_PER_DEP, 3);
        let store = shared(WeightStore::new(topo, 2, 7));
        let mut m = ActModule::new(test_cfg(), 100, store.clone());
        m.on_thread_start(4);
        assert!(!store.borrow().has_weights(4));
        m.on_thread_end(4);
        assert!(store.borrow().has_weights(4));
    }

    #[test]
    fn training_mode_learns_until_rate_drops() {
        // Feed the same dependence stream repeatedly: an untrained module
        // starts in training mode and must learn the pattern, eventually
        // switching to testing mode.
        let mut m = module_with_seq_len(2);
        m.on_thread_start(0);
        assert_eq!(m.mode(), Mode::Training);
        let mut cycle = 0;
        for round in 0..4000 {
            cycle += 30;
            m.tick(cycle);
            let i = round % 4;
            let _ = m.offer_load(&load_event(10 + i, Some(dep(i, 10 + i)), cycle));
        }
        assert_eq!(m.mode(), Mode::Testing, "module should have learned the stream");
        assert!(m.stats().train_updates > 0);
        assert!(m.stats().to_testing >= 1);
    }

    #[test]
    fn full_fifo_exerts_backpressure() {
        let mut cfg = test_cfg();
        cfg.pipeline.fifo_capacity = 1;
        let topo = Topology::new(crate::encoding::FEATURES_PER_DEP, 2);
        let store = shared(WeightStore::new(topo, 1, 7));
        let mut m = ActModule::new(cfg, 100, store);
        m.on_thread_start(0);
        m.tick(1);
        // Same cycle: first enters service, second queues, third must stall.
        assert!(m.offer_load(&load_event(5, Some(dep(1, 5)), 1)));
        assert!(m.offer_load(&load_event(6, Some(dep(2, 6)), 1)));
        assert!(!m.offer_load(&load_event(7, Some(dep(3, 7)), 1)));
        // After enough cycles the FIFO drains and the load is accepted.
        m.tick(100);
        assert!(m.offer_load(&load_event(7, Some(dep(3, 7)), 100)));
    }

    #[test]
    fn metrics_snapshot_exports_module_state() {
        let mut m = module_with_seq_len(2);
        m.on_thread_start(0);
        m.tick(1);
        let _ = m.offer_load(&load_event(5, Some(dep(1, 5)), 1));
        m.tick(50);
        let _ = m.offer_load(&load_event(6, Some(dep(2, 6)), 50));
        let snap = m.metrics_snapshot();
        assert_eq!(snap.counter("predictions"), Some(m.stats().predictions));
        assert_eq!(snap.gauge("igb_occupancy"), Some(2));
        assert_eq!(snap.gauge("igb_capacity"), Some(50));
        assert_eq!(snap.gauge("mode_training"), Some(1), "untrained thread trains");
        assert_eq!(snap.gauge("debug_capacity"), Some(60));
        // The snapshot round-trips through the wire form intact.
        let bytes = snap.to_bytes();
        assert_eq!(act_obs::MetricsSnapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn invalid_predictions_land_in_debug_buffer() {
        // Train a network to accept one pattern, then feed a wildly
        // different one; at least some should be flagged invalid.
        let n = 2;
        let topo = Topology::new(crate::encoding::FEATURES_PER_DEP * n, 4);
        let mut ws = WeightStore::new(topo, n, 7);
        // Train offline on "valid" examples around low PCs.
        let enc = Encoder::new(100);
        let mut net = Network::random(topo, 0.5, 3);
        let valid_seq = [dep(1, 5), dep(2, 6)];
        let invalid_seq = [dep(90, 40), dep(80, 30)];
        let xv = enc.encode_seq(&valid_seq);
        let xi = enc.encode_seq(&invalid_seq);
        for _ in 0..2000 {
            net.train(&xv, 1.0);
            net.train(&xi, 0.0);
        }
        ws.store_weights(0, net.weights_flat());
        let store = shared(ws);
        let mut m = ActModule::new(test_cfg(), 100, store);
        m.on_thread_start(0);
        m.tick(1);
        // Feed: valid prefix, then the invalid tail.
        let _ = m.offer_load(&load_event(5, Some(dep(1, 5)), 1));
        m.tick(50);
        let _ = m.offer_load(&load_event(6, Some(dep(2, 6)), 50));
        m.tick(100);
        let _ = m.offer_load(&load_event(30, Some(dep(80, 30)), 100));
        // The last sequence (2->6, 80->30) was never trained valid; the
        // second sequence (1->5, 2->6) was.
        assert!(m.stats().predictions >= 2);
        assert!(m.debug_buffer().len() <= m.stats().invalids as usize);
    }
}
