//! Per-thread weight storage — the software model of the paper's
//! "binary patching": after offline training, each thread's link weights are
//! stored with the program and loaded into the ACT module's weight registers
//! (`chkwt`/`ldwt`/`stwt`) when the thread is scheduled; on thread exit the
//! (possibly online-retrained) weights are written back so later executions
//! benefit.

use act_nn::network::{Network, Topology};
use act_sim::events::ThreadId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// The trained state attached to a program: topology, sequence length, and
/// per-thread weights.
#[derive(Debug, Clone)]
pub struct WeightStore {
    topology: Topology,
    seq_len: usize,
    per_tid: HashMap<ThreadId, Vec<f32>>,
    /// Weights given to threads with no stored entry (random, so the module
    /// mispredicts heavily and is forced into online training, as §IV-C
    /// describes).
    default_weights: Vec<f32>,
}

impl WeightStore {
    /// An empty store for `topology` / sequence length `seq_len`.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len == 0`.
    pub fn new(topology: Topology, seq_len: usize, seed: u64) -> Self {
        assert!(seq_len > 0);
        let mut default_weights = Network::random(topology, 0.2, seed ^ 0xdef0).weights_flat();
        // Bias the default network toward "invalid" so an untrained thread
        // mispredicts heavily and the module is forced into online training
        // (§IV-C: default weights "will cause too many mispredictions").
        // The last flat weight is the output neuron's bias.
        *default_weights.last_mut().expect("nonempty weights") -= 3.0;
        WeightStore { topology, seq_len, per_tid: HashMap::new(), default_weights }
    }

    /// The network topology all threads share.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The dependence-sequence length `N` the network was trained for.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// `chkwt`: whether thread `tid` has stored weights.
    pub fn has_weights(&self, tid: ThreadId) -> bool {
        self.per_tid.contains_key(&tid)
    }

    /// Thread ids with stored weights, ascending.
    pub fn known_threads(&self) -> Vec<ThreadId> {
        let mut ids: Vec<ThreadId> = self.per_tid.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// `ldwt` stream: the weights for `tid` (stored, or the default).
    pub fn weights_for(&self, tid: ThreadId) -> &[f32] {
        self.per_tid.get(&tid).map_or(&self.default_weights, Vec::as_slice)
    }

    /// `stwt` stream: store weights for `tid` (the binary-patching step).
    ///
    /// # Panics
    ///
    /// Panics if the weight vector does not match the topology.
    pub fn store_weights(&mut self, tid: ThreadId, weights: Vec<f32>) {
        assert_eq!(weights.len(), self.topology.weight_count(), "weight size mismatch");
        self.per_tid.insert(tid, weights);
    }

    /// Build a [`Network`] initialized with `tid`'s weights.
    pub fn network_for(&self, tid: ThreadId, learning_rate: f32) -> Network {
        Network::from_flat(self.topology, self.weights_for(tid), learning_rate)
    }
}

/// Shared handle to a [`WeightStore`], used by per-core ACT modules (a
/// thread may migrate between cores across runs) and by the harness that
/// persists weights between executions.
pub type SharedWeightStore = Rc<RefCell<WeightStore>>;

/// Wrap a store for sharing.
pub fn shared(store: WeightStore) -> SharedWeightStore {
    Rc::new(RefCell::new(store))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_thread_gets_default_weights() {
        let store = WeightStore::new(Topology::new(4, 3), 2, 1);
        assert!(!store.has_weights(5));
        assert_eq!(store.weights_for(5).len(), Topology::new(4, 3).weight_count());
    }

    #[test]
    fn store_and_retrieve_round_trips() {
        let topo = Topology::new(4, 3);
        let mut store = WeightStore::new(topo, 2, 1);
        let w: Vec<f32> = (0..topo.weight_count()).map(|i| i as f32).collect();
        store.store_weights(7, w.clone());
        assert!(store.has_weights(7));
        assert_eq!(store.weights_for(7), &w[..]);
        assert_eq!(store.known_threads(), vec![7]);
    }

    #[test]
    fn network_for_uses_stored_weights() {
        let topo = Topology::new(2, 2);
        let mut store = WeightStore::new(topo, 1, 1);
        let trained = Network::random(topo, 0.2, 99);
        store.store_weights(0, trained.weights_flat());
        let mut a = store.network_for(0, 0.2);
        let mut b = trained.clone();
        assert_eq!(a.predict(&[0.3, 0.7]), b.predict(&[0.3, 0.7]));
        // Unknown thread differs (default weights).
        let mut c = store.network_for(1, 0.2);
        assert_ne!(a.predict(&[0.3, 0.7]), c.predict(&[0.3, 0.7]));
    }

    #[test]
    #[should_panic(expected = "weight size mismatch")]
    fn wrong_size_rejected() {
        let mut store = WeightStore::new(Topology::new(2, 2), 1, 1);
        store.store_weights(0, vec![0.0; 3]);
    }
}

// ---------------------------------------------------------------------
// Persistence: the on-disk form of the paper's binary patching.
// ---------------------------------------------------------------------

/// Error produced when parsing a serialized weight store.
#[derive(Debug)]
pub enum ParseWeightsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseWeightsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseWeightsError::Io(e) => write!(f, "i/o error: {e}"),
            ParseWeightsError::Malformed { line, reason } => {
                write!(f, "malformed weight store at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseWeightsError {}

impl From<std::io::Error> for ParseWeightsError {
    fn from(e: std::io::Error) -> Self {
        ParseWeightsError::Io(e)
    }
}

impl WeightStore {
    /// Serialize the store (topology, sequence length, default and
    /// per-thread weights) to `w` as text.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `w`.
    pub fn save<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut buf = String::new();
        writeln!(
            buf,
            "actweights v1 {} {} {}",
            self.topology.inputs, self.topology.hidden, self.seq_len
        )
        .expect("string write");
        let mut line = |tag: &str, weights: &[f32]| {
            buf.push_str(tag);
            for v in weights {
                let _ = write!(buf, " {v}");
            }
            buf.push('\n');
        };
        line("default", &self.default_weights);
        for tid in self.known_threads() {
            line(&format!("tid {tid}"), self.weights_for(tid));
        }
        w.write_all(buf.as_bytes())
    }

    /// Save atomically to `path`: write the full serialization to a
    /// temporary file in the *same directory*, then `rename` it into place.
    /// A crash (or poisoned request — see `act-serve`) mid-save can
    /// therefore never leave a torn, half-written model file: readers see
    /// either the old complete file or the new complete one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating, writing, or renaming the
    /// temporary file (which is removed on write failure).
    pub fn save_to_path<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        // Unique per process so concurrent savers in different processes
        // cannot clobber each other's partial writes; the final rename is
        // last-writer-wins either way.
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let result = std::fs::File::create(&tmp).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            self.save(&mut w)?;
            use std::io::Write as _;
            w.flush()
        });
        if let Err(e) = result {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, path)
    }

    /// Load a store saved by [`WeightStore::save`] / [`WeightStore::save_to_path`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseWeightsError`] on I/O failure or malformed content.
    pub fn load_from_path<P: AsRef<std::path::Path>>(
        path: P,
    ) -> Result<WeightStore, ParseWeightsError> {
        let f = std::fs::File::open(path)?;
        WeightStore::load(std::io::BufReader::new(f))
    }

    /// Parse a store previously produced by [`WeightStore::save`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseWeightsError`] on I/O failure or malformed input.
    pub fn load<R: std::io::BufRead>(r: R) -> Result<WeightStore, ParseWeightsError> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or(ParseWeightsError::Malformed { line: 1, reason: "empty input".into() })??;
        let mut h = header.split_whitespace();
        if h.next() != Some("actweights") || h.next() != Some("v1") {
            return Err(ParseWeightsError::Malformed { line: 1, reason: "bad header".into() });
        }
        let mut dim = |name: &str| -> Result<usize, ParseWeightsError> {
            h.next()
                .and_then(|v| v.parse().ok())
                .ok_or(ParseWeightsError::Malformed { line: 1, reason: format!("bad {name}") })
        };
        let inputs = dim("inputs")?;
        let hidden = dim("hidden")?;
        let seq_len = dim("seq_len")?;
        let topology = Topology::new(inputs, hidden);
        let mut store = WeightStore::new(topology, seq_len, 0);
        for (i, line) in lines.enumerate() {
            let line = line?;
            let lineno = i + 2;
            if line.is_empty() {
                continue;
            }
            let mut t = line.split_whitespace();
            let bad = |reason: String| ParseWeightsError::Malformed { line: lineno, reason };
            let tag = t.next().ok_or_else(|| bad("missing tag".into()))?;
            let parse_weights =
                |t: std::str::SplitWhitespace<'_>| -> Result<Vec<f32>, ParseWeightsError> {
                    let ws: Result<Vec<f32>, _> = t.map(|v| v.parse::<f32>()).collect();
                    let ws = ws.map_err(|e| ParseWeightsError::Malformed {
                        line: lineno,
                        reason: format!("bad weight: {e}"),
                    })?;
                    if ws.len() != topology.weight_count() {
                        return Err(ParseWeightsError::Malformed {
                            line: lineno,
                            reason: format!(
                                "expected {} weights, got {}",
                                topology.weight_count(),
                                ws.len()
                            ),
                        });
                    }
                    Ok(ws)
                };
            match tag {
                "default" => store.default_weights = parse_weights(t)?,
                "tid" => {
                    let tid: ThreadId = t
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| bad("bad tid".into()))?;
                    let ws = parse_weights(t)?;
                    store.per_tid.insert(tid, ws);
                }
                other => return Err(bad(format!("unknown tag {other}"))),
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn save_load_round_trips() {
        let topo = Topology::new(10, 10);
        let mut store = WeightStore::new(topo, 2, 7);
        store.store_weights(0, Network::random(topo, 0.2, 1).weights_flat());
        store.store_weights(3, Network::random(topo, 0.2, 2).weights_flat());
        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();
        let back = WeightStore::load(buf.as_slice()).unwrap();
        assert_eq!(back.topology(), topo);
        assert_eq!(back.seq_len(), 2);
        assert_eq!(back.known_threads(), vec![0, 3]);
        for tid in [0u32, 3, 99] {
            let a = store.weights_for(tid);
            let b = back.weights_for(tid);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-5, "tid {tid}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let topo = Topology::new(4, 2);
        let store = WeightStore::new(topo, 3, 11);
        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();
        let back = WeightStore::load(buf.as_slice()).unwrap();
        assert_eq!(back.topology(), topo);
        assert_eq!(back.seq_len(), 3);
        assert!(back.known_threads().is_empty());
        // Default weights survive (untrained threads behave identically).
        for (x, y) in store.weights_for(0).iter().zip(back.weights_for(0)) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn multi_thread_store_round_trips_per_thread() {
        let topo = Topology::new(5, 4);
        let mut store = WeightStore::new(topo, 2, 3);
        for tid in [0u32, 1, 2, 7, 31] {
            store.store_weights(
                tid,
                Network::random(topo, 0.2, 100 + u64::from(tid)).weights_flat(),
            );
        }
        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();
        let back = WeightStore::load(buf.as_slice()).unwrap();
        assert_eq!(back.known_threads(), vec![0, 1, 2, 7, 31]);
        for tid in [0u32, 1, 2, 7, 31] {
            for (x, y) in store.weights_for(tid).iter().zip(back.weights_for(tid)) {
                assert!((x - y).abs() < 1e-5, "tid {tid}");
            }
        }
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(WeightStore::load(&b"nope"[..]).is_err());
        assert!(WeightStore::load(&b""[..]).is_err());
        // Wrong version tag.
        assert!(WeightStore::load(&b"actweights v2 2 2 1\n"[..]).is_err());
        // Missing dimensions.
        assert!(WeightStore::load(&b"actweights v1 2\n"[..]).is_err());
        // Wrong weight count for the declared topology.
        assert!(WeightStore::load(&b"actweights v1 2 2 1\ndefault 1 2\n"[..]).is_err());
        // Unknown tag.
        assert!(WeightStore::load(&b"actweights v1 2 2 1\nwhat 1\n"[..]).is_err());
        // Non-numeric weight.
        assert!(WeightStore::load(&b"actweights v1 1 1 1\ntid 0 a b c d\n"[..]).is_err());
        // Missing thread id.
        assert!(WeightStore::load(&b"actweights v1 1 1 1\ntid\n"[..]).is_err());
    }

    #[test]
    fn atomic_save_to_path_round_trips_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("actw-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.weights");
        let topo = Topology::new(3, 2);
        let mut store = WeightStore::new(topo, 2, 5);
        store.store_weights(4, Network::random(topo, 0.2, 9).weights_flat());
        store.save_to_path(&path).unwrap();
        // Overwrite with a second save: the rename must replace atomically.
        store.store_weights(5, Network::random(topo, 0.2, 10).weights_flat());
        store.save_to_path(&path).unwrap();
        let back = WeightStore::load_from_path(&path).unwrap();
        assert_eq!(back.known_threads(), vec![4, 5]);
        // No .tmp.* litter remains next to the target.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_to_path_into_missing_dir_fails_cleanly() {
        let store = WeightStore::new(Topology::new(2, 2), 1, 1);
        let err = store.save_to_path("/nonexistent-dir-for-act-tests/model.weights");
        assert!(err.is_err());
    }
}
