//! The workspace error type.
//!
//! [`ActError`] is the one enum every public fallible API above the leaf
//! crates returns (`act-serve` cache/training, `act-bench` campaign
//! plumbing and bench-artifact parsing, CLI glue). Leaf crates that
//! `act-core` itself depends on keep their own small typed errors —
//! [`ConfigError`] (act-nn), [`SpecError`](act_fleet::SpecError)
//! (act-fleet), [`ParseTraceError`](act_trace::io::ParseTraceError)
//! (act-trace) — and `From` conversions lift them into `ActError` at the
//! boundary.
//!
//! Display output is the contract: several messages (e.g.
//! ``unknown workload `name` ``) are asserted on by tests and grepped by
//! `ci.sh`, so variants render byte-identically to the `String` errors
//! they replaced.

use act_fleet::SpecError;
use act_nn::ConfigError;
use act_trace::io::ParseTraceError;
use std::fmt;
use std::io;

/// Any error the ACT stack reports across a public API boundary.
#[derive(Debug)]
pub enum ActError {
    /// A configuration failed validation (the payload names the field).
    Config(ConfigError),
    /// A request named a workload the registry does not know.
    UnknownWorkload(String),
    /// Training could not produce a model for a workload.
    Train {
        /// The workload being trained.
        workload: String,
        /// Why training failed.
        reason: String,
    },
    /// A campaign spec failed to parse.
    Spec(SpecError),
    /// A serialized trace failed to parse.
    Trace(ParseTraceError),
    /// Structured text (bench JSON, reports, model files) failed to parse.
    Parse(String),
    /// An I/O operation failed; `context` says which (usually a path).
    Io {
        /// What was being done (usually the path involved).
        context: String,
        /// The underlying failure.
        source: io::Error,
    },
    /// Anything else, pre-rendered.
    Other(String),
}

impl ActError {
    /// An [`ActError::Io`] with context.
    pub fn io(context: impl Into<String>, source: io::Error) -> ActError {
        ActError::Io { context: context.into(), source }
    }
}

impl fmt::Display for ActError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActError::Config(e) => e.fmt(f),
            ActError::UnknownWorkload(name) => write!(f, "unknown workload `{name}`"),
            ActError::Train { workload, reason } => write!(f, "{workload}: {reason}"),
            ActError::Spec(e) => e.fmt(f),
            ActError::Trace(e) => e.fmt(f),
            ActError::Parse(message) | ActError::Other(message) => f.write_str(message),
            ActError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for ActError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ActError::Config(e) => Some(e),
            ActError::Spec(e) => Some(e),
            ActError::Trace(e) => Some(e),
            ActError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ConfigError> for ActError {
    fn from(e: ConfigError) -> ActError {
        ActError::Config(e)
    }
}

impl From<SpecError> for ActError {
    fn from(e: SpecError) -> ActError {
        ActError::Spec(e)
    }
}

impl From<ParseTraceError> for ActError {
    fn from(e: ParseTraceError) -> ActError {
        ActError::Trace(e)
    }
}

impl From<String> for ActError {
    fn from(message: String) -> ActError {
        ActError::Other(message)
    }
}

impl From<&str> for ActError {
    fn from(message: &str) -> ActError {
        ActError::Other(message.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_keeps_asserted_message_shapes() {
        assert_eq!(
            ActError::UnknownWorkload("no-such".into()).to_string(),
            "unknown workload `no-such`"
        );
        assert_eq!(
            ActError::Train { workload: "seq".into(), reason: "no correct training runs".into() }
                .to_string(),
            "seq: no correct training runs"
        );
        assert_eq!(
            ActError::io("/tmp/x", io::Error::new(io::ErrorKind::NotFound, "gone")).to_string(),
            "/tmp/x: gone"
        );
    }

    #[test]
    fn from_conversions_and_source_chain() {
        let err: ActError = ConfigError::new("check_interval", "must be at least 1").into();
        assert!(err.to_string().contains("`check_interval`"), "{err}");
        assert!(err.source().is_some());
        let err: ActError = SpecError::MissingKind.into();
        assert_eq!(err.to_string(), "spec is missing `kind`");
        let err: ActError = "free text".into();
        assert!(err.source().is_none());
    }
}
