//! Encoding RAW dependence sequences as neural-network input vectors.
//!
//! Each dependence contributes four features:
//!
//! * the store's instruction address, normalized by code length, with the
//!   inter-thread flag folded into the low-order half of the feature's
//!   resolution (`(2·pc + inter) / (2·code_len)`);
//! * the load's instruction address, normalized by code length;
//! * three *signature bits* — independent full-scale hash bits of the
//!   (store, load, inter-thread) triple.
//!
//! The two positional features give the network locality: nearby
//! instruction addresses map to nearby inputs, which is what lets it
//! generalize to *new but similar* code (§II-C, Fig 7(b)). The signature
//! feature gives it separability: two dependences whose store addresses
//! differ by a few instructions (exactly what a synthesized negative
//! example looks like) land far apart, so the classifier does not need
//! cliff-steep weights to tell them apart — a one-hidden-layer network
//! with learning rate 0.2 could not learn boundaries at a resolution of
//! one part in a few thousand otherwise.

use act_sim::events::RawDep;

/// Features produced per dependence.
pub const FEATURES_PER_DEP: usize = 5;

/// Encoder bound to a program's code length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Encoder {
    code_len: usize,
}

impl Encoder {
    /// Encoder for a program with `code_len` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `code_len == 0`.
    pub fn new(code_len: usize) -> Self {
        assert!(code_len > 0, "code length must be positive");
        Encoder { code_len }
    }

    /// The code length this encoder normalizes by.
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// Input-vector width for sequences of `n` dependences.
    pub fn input_width(&self, n: usize) -> usize {
        n * FEATURES_PER_DEP
    }

    /// The three signature bits of a dependence: independent hash bits at
    /// full feature scale (0 or 1), so two distinct dependences differ by
    /// a full-scale step in some signature dimension with probability 7/8.
    /// Full-scale separation is what makes set-membership learnable by a
    /// small MLP: each valid sequence occupies a corner of the bit-cube
    /// that one or two hidden units can latch onto.
    fn signature_bits(dep: &RawDep) -> (f32, f32, f32) {
        let i = dep.inter_thread as u32;
        let mix = |a: u32, b: u32, c: u32| -> f32 {
            let h = dep
                .store_pc
                .wrapping_mul(a)
                .wrapping_add(dep.load_pc.wrapping_mul(b))
                .wrapping_add(i.wrapping_mul(c));
            // Fold the upper bits down so nearby PCs flip bits too.
            ((h ^ (h >> 3) ^ (h >> 7)) & 1) as f32
        };
        (mix(31, 7, 1), mix(13, 3, 5), mix(23, 11, 9))
    }

    /// Append the five features of `dep` to `out`.
    pub fn encode_into(&self, dep: &RawDep, out: &mut Vec<f32>) {
        let denom = (2 * self.code_len) as f32;
        let store = (2 * dep.store_pc as usize + dep.inter_thread as usize) as f32 / denom;
        let load = dep.load_pc as f32 / self.code_len as f32;
        let (b1, b2, b3) = Self::signature_bits(dep);
        out.push(store.min(1.0));
        out.push(load.min(1.0));
        out.push(b1);
        out.push(b2);
        out.push(b3);
    }

    /// Encode a full sequence (oldest dependence first).
    pub fn encode_seq(&self, deps: &[RawDep]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.input_width(deps.len()));
        for d in deps {
            self.encode_into(d, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(s: u32, l: u32, inter: bool) -> RawDep {
        RawDep { store_pc: s, load_pc: l, inter_thread: inter }
    }

    #[test]
    fn features_are_normalized() {
        let e = Encoder::new(100);
        let x = e.encode_seq(&[dep(50, 99, false)]);
        assert_eq!(x.len(), 5);
        assert!((x[0] - 0.5).abs() < 1e-6);
        assert!((x[1] - 0.99).abs() < 1e-6);
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn inter_thread_flag_shifts_store_feature() {
        let e = Encoder::new(100);
        let intra = e.encode_seq(&[dep(50, 10, false)]);
        let inter = e.encode_seq(&[dep(50, 10, true)]);
        assert!(inter[0] > intra[0]);
        assert_eq!(intra[1], inter[1]);
        // The signature also separates the two.
        assert!(intra[2..] != inter[2..]);
    }

    #[test]
    fn nearby_pcs_give_nearby_positional_features() {
        let e = Encoder::new(1000);
        let a = e.encode_seq(&[dep(500, 600, false)]);
        let b = e.encode_seq(&[dep(501, 601, false)]);
        let far = e.encode_seq(&[dep(10, 990, false)]);
        let dist = |u: &[f32], v: &[f32]| (u[0] - v[0]).abs().max((u[1] - v[1]).abs());
        assert!(dist(&a, &b) < dist(&a, &far));
    }

    #[test]
    fn adjacent_stores_are_separable_via_signature() {
        // Two dependences whose stores differ by a couple of instructions
        // (a typical synthesized negative) must differ strongly in at
        // least one feature.
        let e = Encoder::new(200);
        let pos = e.encode_seq(&[dep(14, 35, true)]);
        let neg = e.encode_seq(&[dep(10, 35, true)]);
        let max_gap = pos.iter().zip(&neg).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(max_gap > 0.05, "gap {max_gap} too small to learn");
    }

    #[test]
    fn sequence_width_is_three_per_dep() {
        let e = Encoder::new(10);
        let seq = [dep(1, 2, false), dep(3, 4, true), dep(5, 6, false)];
        assert_eq!(e.encode_seq(&seq).len(), 15);
        assert_eq!(e.input_width(3), 15);
    }

    #[test]
    fn distinct_deps_encode_distinctly() {
        let e = Encoder::new(64);
        let a = e.encode_seq(&[dep(5, 9, false)]);
        let b = e.encode_seq(&[dep(6, 9, false)]);
        let c = e.encode_seq(&[dep(5, 8, false)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_code_len_rejected() {
        let _ = Encoder::new(0);
    }
}
