//! Encoding RAW dependence sequences as neural-network input vectors.
//!
//! Each dependence contributes four features:
//!
//! * the store's instruction address, normalized by code length, with the
//!   inter-thread flag folded into the low-order half of the feature's
//!   resolution (`(2·pc + inter) / (2·code_len)`);
//! * the load's instruction address, normalized by code length;
//! * three *signature bits* — independent full-scale hash bits of the
//!   (store, load, inter-thread) triple.
//!
//! The two positional features give the network locality: nearby
//! instruction addresses map to nearby inputs, which is what lets it
//! generalize to *new but similar* code (§II-C, Fig 7(b)). The signature
//! feature gives it separability: two dependences whose store addresses
//! differ by a few instructions (exactly what a synthesized negative
//! example looks like) land far apart, so the classifier does not need
//! cliff-steep weights to tell them apart — a one-hidden-layer network
//! with learning rate 0.2 could not learn boundaries at a resolution of
//! one part in a few thousand otherwise.

use act_sim::events::RawDep;

/// Features produced per dependence.
pub const FEATURES_PER_DEP: usize = 5;

/// Encoder bound to a program's code length.
#[derive(Debug, Clone, Copy)]
pub struct Encoder {
    code_len: usize,
    /// `1 / code_len`, precomputed: the hot path multiplies instead of
    /// dividing (a divide is the longest-latency op in the feature math).
    inv_code_len: f32,
    /// `1 / (2 · code_len)`, for the store feature's half-step resolution.
    inv_denom: f32,
}

impl PartialEq for Encoder {
    fn eq(&self, other: &Self) -> bool {
        // The reciprocals are derived from `code_len`.
        self.code_len == other.code_len
    }
}

impl Eq for Encoder {}

impl Encoder {
    /// Encoder for a program with `code_len` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `code_len == 0`.
    pub fn new(code_len: usize) -> Self {
        assert!(code_len > 0, "code length must be positive");
        Encoder {
            code_len,
            inv_code_len: 1.0 / code_len as f32,
            inv_denom: 1.0 / (2 * code_len) as f32,
        }
    }

    /// The code length this encoder normalizes by.
    pub fn code_len(&self) -> usize {
        self.code_len
    }

    /// Input-vector width for sequences of `n` dependences.
    pub fn input_width(&self, n: usize) -> usize {
        n * FEATURES_PER_DEP
    }

    /// The three signature bits of a dependence: independent hash bits at
    /// full feature scale (0 or 1), so two distinct dependences differ by
    /// a full-scale step in some signature dimension with probability 7/8.
    /// Full-scale separation is what makes set-membership learnable by a
    /// small MLP: each valid sequence occupies a corner of the bit-cube
    /// that one or two hidden units can latch onto.
    fn signature_bits(dep: &RawDep) -> (f32, f32, f32) {
        let i = dep.inter_thread as u32;
        let mix = |a: u32, b: u32, c: u32| -> f32 {
            let h = dep
                .store_pc
                .wrapping_mul(a)
                .wrapping_add(dep.load_pc.wrapping_mul(b))
                .wrapping_add(i.wrapping_mul(c));
            // Fold the upper bits down so nearby PCs flip bits too.
            ((h ^ (h >> 3) ^ (h >> 7)) & 1) as f32
        };
        (mix(31, 7, 1), mix(13, 3, 5), mix(23, 11, 9))
    }

    /// The five features of `dep`, written into a fixed-size chunk. Plain
    /// indexed stores into an array: no per-feature capacity checks, and
    /// the whole chunk's math schedules as one straight line.
    #[inline]
    fn encode_dep(&self, dep: &RawDep, out: &mut [f32; FEATURES_PER_DEP]) {
        let store = (2 * dep.store_pc as usize + dep.inter_thread as usize) as f32 * self.inv_denom;
        let load = dep.load_pc as f32 * self.inv_code_len;
        let (b1, b2, b3) = Self::signature_bits(dep);
        out[0] = store.min(1.0);
        out[1] = load.min(1.0);
        out[2] = b1;
        out[3] = b2;
        out[4] = b3;
    }

    /// Append the five features of `dep` to `out`.
    #[inline]
    pub fn encode_into(&self, dep: &RawDep, out: &mut Vec<f32>) {
        let mut f = [0.0; FEATURES_PER_DEP];
        self.encode_dep(dep, &mut f);
        out.extend_from_slice(&f);
    }

    /// Encode a sequence supplied by iterator (oldest dependence first)
    /// into a reusable buffer: `out` is reshaped to the sequence's width
    /// and every slot overwritten, so a caller that keeps one scratch
    /// vector allocates nothing per prediction in the steady state — and a
    /// caller holding a ring buffer can feed the window straight from it,
    /// with no intermediate contiguous copy.
    #[inline]
    pub fn encode_iter_into<I>(&self, deps: I, out: &mut Vec<f32>)
    where
        I: IntoIterator<Item = RawDep>,
        I::IntoIter: ExactSizeIterator,
    {
        let it = deps.into_iter();
        let width = self.input_width(it.len());
        // Steady state the length already matches: no clear, no zero-fill,
        // every feature slot is overwritten below.
        if out.len() != width {
            out.clear();
            out.resize(width, 0.0);
        }
        for (d, chunk) in it.zip(out.chunks_exact_mut(FEATURES_PER_DEP)) {
            self.encode_dep(&d, chunk.try_into().expect("chunk is FEATURES_PER_DEP wide"));
        }
    }

    /// Encode a contiguous sequence (oldest dependence first) into a
    /// reusable buffer. See [`Encoder::encode_iter_into`].
    #[inline]
    pub fn encode_seq_into(&self, deps: &[RawDep], out: &mut Vec<f32>) {
        self.encode_iter_into(deps.iter().copied(), out);
    }

    /// Encode a full sequence (oldest dependence first) into a fresh vector.
    pub fn encode_seq(&self, deps: &[RawDep]) -> Vec<f32> {
        let mut out = Vec::new();
        self.encode_seq_into(deps, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(s: u32, l: u32, inter: bool) -> RawDep {
        RawDep { store_pc: s, load_pc: l, inter_thread: inter }
    }

    #[test]
    fn features_are_normalized() {
        let e = Encoder::new(100);
        let x = e.encode_seq(&[dep(50, 99, false)]);
        assert_eq!(x.len(), 5);
        assert!((x[0] - 0.5).abs() < 1e-6);
        assert!((x[1] - 0.99).abs() < 1e-6);
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn inter_thread_flag_shifts_store_feature() {
        let e = Encoder::new(100);
        let intra = e.encode_seq(&[dep(50, 10, false)]);
        let inter = e.encode_seq(&[dep(50, 10, true)]);
        assert!(inter[0] > intra[0]);
        assert_eq!(intra[1], inter[1]);
        // The signature also separates the two.
        assert!(intra[2..] != inter[2..]);
    }

    #[test]
    fn nearby_pcs_give_nearby_positional_features() {
        let e = Encoder::new(1000);
        let a = e.encode_seq(&[dep(500, 600, false)]);
        let b = e.encode_seq(&[dep(501, 601, false)]);
        let far = e.encode_seq(&[dep(10, 990, false)]);
        let dist = |u: &[f32], v: &[f32]| (u[0] - v[0]).abs().max((u[1] - v[1]).abs());
        assert!(dist(&a, &b) < dist(&a, &far));
    }

    #[test]
    fn adjacent_stores_are_separable_via_signature() {
        // Two dependences whose stores differ by a couple of instructions
        // (a typical synthesized negative) must differ strongly in at
        // least one feature.
        let e = Encoder::new(200);
        let pos = e.encode_seq(&[dep(14, 35, true)]);
        let neg = e.encode_seq(&[dep(10, 35, true)]);
        let max_gap = pos.iter().zip(&neg).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(max_gap > 0.05, "gap {max_gap} too small to learn");
    }

    #[test]
    fn sequence_width_is_three_per_dep() {
        let e = Encoder::new(10);
        let seq = [dep(1, 2, false), dep(3, 4, true), dep(5, 6, false)];
        assert_eq!(e.encode_seq(&seq).len(), 15);
        assert_eq!(e.input_width(3), 15);
    }

    #[test]
    fn distinct_deps_encode_distinctly() {
        let e = Encoder::new(64);
        let a = e.encode_seq(&[dep(5, 9, false)]);
        let b = e.encode_seq(&[dep(6, 9, false)]);
        let c = e.encode_seq(&[dep(5, 8, false)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_code_len_rejected() {
        let _ = Encoder::new(0);
    }
}
