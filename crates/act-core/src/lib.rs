//! # act-core — ACT: Adaptive Communication Tracking
//!
//! The paper's primary contribution: production-run software failure
//! diagnosis by validating RAW data-communication dependence sequences with
//! per-core neural hardware, logging predicted-invalid sequences, and
//! prune-and-rank postprocessing that pinpoints the root cause **without
//! reproducing the failure**.
//!
//! ## The workflow
//!
//! 1. **Offline training** ([`offline`]): collect traces of correct runs,
//!    form dependence sequences (positive + synthesized negative examples),
//!    search `i × h × 1` topologies, store per-thread weights
//!    ([`weights::WeightStore`] — the paper's binary patching).
//! 2. **Online testing/training** ([`module::ActModule`]): attached to each
//!    simulated core, the module verifies every dependence sequence through
//!    the pipelined network, logs invalid ones in its debug buffer, and
//!    flips into online training whenever the misprediction rate exceeds
//!    the threshold — this is what makes ACT *adaptive* to new code,
//!    inputs, and platforms.
//! 3. **Offline postprocessing** ([`postprocess`]): after a failure, prune
//!    the debug buffer against a Correct Set built from fresh correct
//!    executions, then rank by matched-dependence count.
//!
//! [`diagnosis`] ties the three together over `act-sim` machines.
//!
//! ## Example
//!
//! See `examples/quickstart.rs` for the full train → fail → diagnose loop
//! on a real bug workload.

pub mod config;
pub mod diagnosis;
pub mod encoding;
pub mod error;
pub mod module;
pub mod offline;
pub mod postprocess;
pub mod weights;

pub use act_nn::ConfigError;
pub use config::ActConfig;
pub use diagnosis::{build_correct_set, diagnose, run_with_act, ActRun};
pub use error::ActError;
pub use module::{ActModule, DebugEntry, Mode};
pub use offline::{collect_traces, offline_train, TrainedAct};
pub use postprocess::{Diagnosis, RankedSequence};
pub use weights::{shared, SharedWeightStore, WeightStore};
