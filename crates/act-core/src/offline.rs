//! Offline training (§III-B): collect traces from correct executions, run
//! the input generator, search topologies, and produce per-thread weights.

use crate::config::ActConfig;
use crate::encoding::Encoder;
use crate::weights::WeightStore;
use act_nn::network::{Network, Topology};
use act_nn::trainer::{self, Example, SearchOutcome};
use act_sim::config::MachineConfig;
use act_sim::events::ThreadId;
use act_sim::machine::Machine;
use act_sim::outcome::RunOutcome;
use act_sim::program::Program;
use act_trace::collector::TraceCollector;
use act_trace::event::Trace;
use act_trace::input_gen::sequences_ext;
use act_trace::raw::{distinct_deps, observed_deps, DepEvent};
use std::collections::HashMap;

/// What offline training found — the per-program row of Table IV.
#[derive(Debug, Clone)]
pub struct OfflineReport {
    /// Traces used for training (the rest were held out).
    pub train_traces: usize,
    /// Held-out traces used to score topologies.
    pub test_traces: usize,
    /// Dependence occurrences across all traces.
    pub total_deps: usize,
    /// Distinct dependences across all traces (Table IV "# RAW Dep").
    pub distinct_deps: usize,
    /// Winning sequence length `N`.
    pub seq_len: usize,
    /// Winning topology (Table IV "Topology").
    pub topology: Topology,
    /// Held-out false-positive rate: valid sequences predicted invalid
    /// (Table IV "% mispred" — the paper's test data has no invalid
    /// dependences, so its mispredictions are all false positives).
    pub test_fp_rate: f64,
    /// Held-out false-negative rate on all synthesized invalid sequences
    /// (previous-writer + cross negatives — harder than the paper's set).
    pub test_fn_rate: f64,
    /// Held-out false-negative rate on *previous-writer* negatives only —
    /// the paper's Fig 7(a) metric.
    pub test_fn_rate_paper: f64,
    /// Topology candidates evaluated.
    pub candidates: usize,
}

/// Result of offline training: the weight store to deploy plus the report.
#[derive(Debug, Clone)]
pub struct TrainedAct {
    /// Per-thread weights, ready for [`crate::module::ActModule`].
    pub store: WeightStore,
    /// Training summary.
    pub report: OfflineReport,
}

/// Run `program` once per seed and keep the traces of runs that
/// `is_correct` accepts (offline training uses only correct executions).
pub fn collect_traces<F>(
    program: &Program,
    base: &MachineConfig,
    seeds: impl IntoIterator<Item = u64>,
    mut is_correct: F,
) -> Vec<Trace>
where
    F: FnMut(&RunOutcome) -> bool,
{
    let mut traces = Vec::new();
    for seed in seeds {
        let cfg = MachineConfig { seed, ..base.clone() };
        let mut collector = TraceCollector::new(program.code_len());
        let mut machine = Machine::new(program, cfg);
        let outcome = machine.run_observed(&mut collector);
        if is_correct(&outcome) {
            traces.push(collector.into_trace());
        }
    }
    traces
}

/// Interleave positive and negative examples, *oversampling* the negatives
/// so the classifier cannot win by predicting "valid" unconditionally —
/// observed traces contain few invalid sequences (one synthesized per
/// multi-writer load) against a flood of valid ones.
fn balance(pos: Vec<Example>, neg: Vec<Example>, cap: usize) -> Vec<Example> {
    let mut out = stride_sample(pos, cap.saturating_sub(cap / 4).max(1));
    if neg.is_empty() {
        return out;
    }
    // Aim for roughly one negative per two positives, oversampling each
    // negative at most 16x. (Training shuffles every epoch, so order here
    // does not matter.)
    let target = (out.len() / 2).clamp(1, cap / 3 + 1);
    if neg.len() >= target {
        out.extend(stride_sample(neg, target));
    } else {
        let max = neg.len() * 16;
        for i in 0..target.min(max) {
            out.push(neg[i % neg.len()].clone());
        }
    }
    out
}

/// Random input points labelled invalid: they anchor the classifier's
/// default in unpopulated input regions to "invalid".
fn noise_negatives(count: usize, width: usize, seed: u64) -> Vec<Example> {
    use act_rng::{Rng, SeedableRng};
    let mut rng = act_rng::rngs::StdRng::seed_from_u64(seed ^ 0x5eed_0bad);
    (0..count)
        .map(|_| Example::invalid((0..width).map(|_| rng.gen_range(0.0..1.0)).collect()))
        .collect()
}

/// Keep at most `max` elements, evenly strided.
fn stride_sample(v: Vec<Example>, max: usize) -> Vec<Example> {
    if v.len() <= max {
        return v;
    }
    let step = v.len() as f64 / max as f64;
    (0..max).map(|i| v[(i as f64 * step) as usize].clone()).collect()
}

/// Generate windows per trace (windows must not span trace boundaries),
/// pool them, and drop any synthesized negative that collides with a
/// sequence observed valid in *any* trace — a correct run somewhere having
/// produced a sequence makes it a positive fact, regardless of which pool
/// the colliding negative came from (clean seeds can exercise different
/// valid paths).
fn encode_examples(
    enc: &Encoder,
    traces_deps: &[&Vec<DepEvent>],
    n: usize,
    cross_negs: usize,
    global_positives: &std::collections::HashSet<Vec<act_sim::events::RawDep>>,
) -> (Vec<Example>, Vec<Example>, Vec<(ThreadId, Example)>) {
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for deps in traces_deps {
        let (p, ng) = sequences_ext(deps, n, cross_negs);
        pos.extend(p);
        neg.extend(ng);
    }
    let neg: Vec<_> = neg.into_iter().filter(|s| !global_positives.contains(&s.deps)).collect();

    let mut pos_ex = Vec::with_capacity(pos.len());
    let mut by_tid = Vec::with_capacity(pos.len());
    for s in &pos {
        let ex = Example::valid(enc.encode_seq(&s.deps));
        by_tid.push((s.tid, ex.clone()));
        pos_ex.push(ex);
    }
    // A synthesized negative that lands (nearly) on top of a positive in
    // *feature space* — a hash collision — is an unlearnable contradiction:
    // training on it can only erode the positive. Drop such negatives.
    let mut distinct_pos: Vec<&Vec<f32>> = pos_ex.iter().map(|e| &e.x).collect();
    distinct_pos.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    distinct_pos.dedup();
    let collides = |x: &[f32]| {
        distinct_pos.iter().any(|p| x.iter().zip(p.iter()).all(|(a, b)| (a - b).abs() < 0.05))
    };

    let mut neg_ex = Vec::with_capacity(neg.len());
    for s in &neg {
        let ex = Example::invalid(enc.encode_seq(&s.deps));
        if collides(&ex.x) {
            continue;
        }
        by_tid.push((s.tid, ex.clone()));
        neg_ex.push(ex);
    }
    (pos_ex, neg_ex, by_tid)
}

/// Every positive sequence of every trace, for negative-collision filtering.
fn global_positive_set(
    traces_deps: &[Vec<DepEvent>],
    n: usize,
) -> std::collections::HashSet<Vec<act_sim::events::RawDep>> {
    let mut set = std::collections::HashSet::new();
    for deps in traces_deps {
        let (p, _) = sequences_ext(deps, n, 0);
        for s in p {
            set.insert(s.deps);
        }
    }
    set
}

/// Train ACT offline from `traces` of a program with `code_len`
/// instructions.
///
/// The trace set is split into training and held-out portions
/// (`cfg.test_fraction`); the `M²` topology search picks the sequence
/// length and hidden size with the lowest held-out error; then each
/// thread's network is fine-tuned from the pooled winner on that thread's
/// own sequences, and the weights are stored per thread id.
///
/// # Panics
///
/// Panics if `traces` is empty or produces no dependences.
pub fn offline_train(code_len: usize, traces: &[Trace], cfg: &ActConfig) -> TrainedAct {
    assert!(!traces.is_empty(), "offline training needs at least one trace");
    cfg.validate().expect("valid ActConfig");
    let enc = Encoder::new(code_len);

    let per_trace_deps: Vec<Vec<DepEvent>> = traces.iter().map(observed_deps).collect();
    let all_deps: Vec<DepEvent> = per_trace_deps.iter().flatten().copied().collect();
    assert!(!all_deps.is_empty(), "traces contain no RAW dependences");

    let mut test_count = ((traces.len() as f64) * cfg.test_fraction).ceil() as usize;
    if test_count >= traces.len() {
        test_count = traces.len() - 1; // always keep at least one training trace
    }
    let train_count = traces.len() - test_count;
    let (train_deps, test_deps): (Vec<&Vec<DepEvent>>, Vec<&Vec<DepEvent>>) = (
        per_trace_deps[..train_count].iter().collect(),
        per_trace_deps[train_count..].iter().collect(),
    );

    // Topology search over pooled examples. Training sets are seeded with
    // "noise negatives" — random input points labelled invalid — so the
    // classifier's default in unpopulated input regions is *invalid*:
    // exactly the property ACT needs to flag communications never seen in
    // any correct run (PSet-style membership).
    let cap = cfg.max_search_examples.max(1);
    let outcome: SearchOutcome =
        trainer::topology_search_with_workers(&cfg.search, cfg.train, cfg.search_workers, |n| {
            let gp = global_positive_set(&per_trace_deps, n);
            let (tp, tn, _) = encode_examples(&enc, &train_deps, n, cfg.cross_negs, &gp);
            let (vp, vn, _) = encode_examples(&enc, &test_deps, n, cfg.cross_negs, &gp);
            let mut train = balance(tp, tn, cap);
            let width = crate::encoding::FEATURES_PER_DEP * n;
            let noise_count = (train.len() as f64 * cfg.noise_fraction) as usize;
            train.extend(noise_negatives(noise_count, width, cfg.train.seed));
            (train, balance(vp, vn, cap))
        });
    let n = outcome.seq_len;
    let topology = outcome.topology;

    // Per-thread fine-tuning from the pooled winner (balanced like the
    // pooled training set).
    let gp = global_positive_set(&per_trace_deps, n);
    let (_, _, by_tid) = encode_examples(&enc, &train_deps, n, cfg.cross_negs, &gp);
    let mut grouped: HashMap<ThreadId, (Vec<Example>, Vec<Example>)> = HashMap::new();
    for (tid, ex) in by_tid {
        let slot = grouped.entry(tid).or_default();
        if ex.t >= 0.5 {
            slot.0.push(ex);
        } else {
            slot.1.push(ex);
        }
    }
    let mut store = WeightStore::new(topology, n, cfg.train.seed);
    let mut tids: Vec<ThreadId> = grouped.keys().copied().collect();
    tids.sort_unstable();
    for tid in tids {
        let (pos, neg) = grouped.remove(&tid).expect("tid grouped");
        // Brief per-thread refinement from the pooled winner: a couple of
        // passes over the thread's own positives, with its negatives along
        // to keep the invalid space carved. (An aggressive per-thread pass
        // destabilizes the shared solution; two gentle epochs only firm up
        // the thread's own valid set.)
        let mut examples = pos;
        let keep = (examples.len() / 2).max(1);
        examples.extend(neg.into_iter().take(keep));
        // Refine at a fraction of the training rate: enough to firm up the
        // thread's own patterns, not enough to destabilize the shared
        // solution on a thread's small, repetitive sample.
        let mut net = Network::from_flat(
            topology,
            &outcome.network.weights_flat(),
            cfg.train.learning_rate * 0.2,
        );
        for _ in 0..2 {
            for ex in &examples {
                net.train(&ex.x, ex.t);
            }
        }
        store.store_weights(tid, net.weights_flat());
    }

    // Held-out quality of the pooled winner, split by example polarity.
    let (vp, vn, _) = encode_examples(&enc, &test_deps, n, cfg.cross_negs, &gp);
    let mut net: Network = outcome.network.clone();
    let fp = trainer::evaluate(&mut net, &vp);
    let fnr = trainer::evaluate(&mut net, &vn);
    // The paper's Fig 7(a) negatives: previous-writer substitutions only.
    let (_, vn_paper, _) = encode_examples(&enc, &test_deps, n, 0, &gp);
    let fnr_paper = trainer::evaluate(&mut net, &vn_paper);

    TrainedAct {
        store,
        report: OfflineReport {
            train_traces: train_count,
            test_traces: traces.len() - train_count,
            total_deps: all_deps.len(),
            distinct_deps: distinct_deps(&all_deps),
            seq_len: n,
            topology,
            test_fp_rate: fp.rate(),
            test_fn_rate: fnr.rate(),
            test_fn_rate_paper: fnr_paper.rate(),
            candidates: outcome.candidates,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use act_sim::asm::Asm;
    use act_sim::isa::{AluOp, Reg};

    const R1: Reg = Reg(1);
    const R2: Reg = Reg(2);
    const R3: Reg = Reg(3);
    const R4: Reg = Reg(4);

    /// A simple producer/consumer loop with stable dependences.
    fn looping_program() -> Program {
        let mut a = Asm::new();
        let buf = a.static_zeroed(8);
        a.func("main");
        a.imm(R1, buf as i64);
        a.imm(R2, 0);
        let top = a.label_here();
        a.alui(AluOp::Mul, R3, R2, 8);
        a.add(R3, R1, R3);
        a.store(R2, R3, 0);
        a.load(R4, R3, 0);
        a.addi(R2, R2, 1);
        a.alui(AluOp::Lt, R4, R2, 8);
        a.bnz(R4, top);
        a.halt();
        a.finish().unwrap()
    }

    fn small_cfg() -> ActConfig {
        let mut cfg = ActConfig::default();
        cfg.search.seq_lens = vec![1, 2];
        cfg.search.hidden_sizes = vec![2, 4];
        cfg.train.max_epochs = 30;
        cfg
    }

    #[test]
    fn collect_traces_keeps_only_correct_runs() {
        let p = looping_program();
        let base = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let traces = collect_traces(&p, &base, [1, 2, 3], |o| o.completed());
        assert_eq!(traces.len(), 3);
        assert!(traces[0].access_count() > 0);
        // A rejecting filter keeps nothing.
        let none = collect_traces(&p, &base, [1], |_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn offline_train_produces_store_and_report() {
        let p = looping_program();
        let base = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let traces = collect_traces(&p, &base, 1..=4, |o| o.completed());
        let trained = offline_train(p.code_len(), &traces, &small_cfg());
        let r = &trained.report;
        assert!(r.total_deps > 0);
        assert!(r.distinct_deps > 0);
        assert!(r.seq_len == 1 || r.seq_len == 2);
        assert_eq!(r.topology.inputs, crate::encoding::FEATURES_PER_DEP * r.seq_len);
        assert!(r.candidates > 0);
        assert!(trained.store.has_weights(0), "main thread weights stored");
        // The stable loop should be learned nearly perfectly.
        assert!(r.test_fp_rate < 0.2, "fp rate {}", r.test_fp_rate);
    }

    #[test]
    fn offline_train_is_byte_identical_at_any_search_worker_count() {
        let p = looping_program();
        let base = MachineConfig { jitter_ppm: 0, ..Default::default() };
        let traces = collect_traces(&p, &base, 1..=4, |o| o.completed());
        let serial = offline_train(p.code_len(), &traces, &small_cfg());
        for workers in [2, 4, 8] {
            let mut cfg = small_cfg();
            cfg.search_workers = workers;
            let par = offline_train(p.code_len(), &traces, &cfg);
            assert_eq!(par.report.seq_len, serial.report.seq_len, "workers={workers}");
            assert_eq!(par.report.topology, serial.report.topology, "workers={workers}");
            assert_eq!(par.report.candidates, serial.report.candidates, "workers={workers}");
            for tid in 0..2u32 {
                if !serial.store.has_weights(tid) {
                    continue;
                }
                let (sw, pw) = (serial.store.weights_for(tid), par.store.weights_for(tid));
                let bits = |w: &[f32]| w.iter().copied().map(f32::to_bits).collect::<Vec<_>>();
                assert_eq!(
                    bits(&sw),
                    bits(&pw),
                    "thread {tid} weights must match bitwise at workers={workers}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn offline_train_rejects_empty() {
        let _ = offline_train(10, &[], &small_cfg());
    }
}
