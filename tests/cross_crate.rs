//! Cross-crate integration invariants that no single crate can test alone.

use act_bench::{collect_clean_traces, machine_cfg};
use act_sim::machine::Machine;
use act_trace::raw::{observed_deps, raw_deps};
use act_workloads::registry;
use act_workloads::spec::Params;

/// The hardware-observed dependence stream must be a subsequence of the
/// precise replay: cache metadata can *lose* writers (evictions, clean
/// transfers) but can never invent one that functional replay disagrees
/// with at word granularity.
#[test]
fn observed_deps_subset_of_precise_deps() {
    for name in ["fft", "bc", "canneal"] {
        let w = registry::by_name(name).unwrap();
        let traces = collect_clean_traces(w.as_ref(), 0..2);
        for t in &traces {
            let precise: std::collections::HashSet<_> =
                raw_deps(t).into_iter().map(|d| (d.seq, d.dep)).collect();
            let observed = observed_deps(t);
            assert!(!observed.is_empty(), "{name}: no observed deps");
            for d in &observed {
                assert!(
                    precise.contains(&(d.seq, d.dep)),
                    "{name}: observed dep {} at seq {} not in precise replay",
                    d.dep,
                    d.seq
                );
            }
            assert!(observed.len() <= raw_deps(t).len());
        }
    }
}

/// Workload determinism: same seed, same machine config -> same outcome and
/// cycle count, across every registered workload (clean configuration).
#[test]
fn workloads_are_deterministic() {
    for w in registry::all() {
        let built = w.build(&w.default_params().with_seed(3));
        let run = |_: u32| {
            let mut m = Machine::new(&built.program, machine_cfg(3));
            let o = m.run();
            (o, m.stats().total_cycles)
        };
        assert_eq!(run(0), run(1), "{} is nondeterministic", w.name());
    }
}

/// Triggered builds change only the data segment, never the code: the
/// paper's bugs are latent in the binary and triggered by timing/input.
#[test]
fn trigger_changes_data_not_code() {
    for w in registry::all() {
        let clean = w.build(&w.default_params());
        let hot = w.build(&w.default_params().triggered());
        assert_eq!(
            clean.program.instrs,
            hot.program.instrs,
            "{}: triggering must not modify code",
            w.name()
        );
    }
}

/// Every real-bug workload must actually fail under its trigger within a
/// few interleaving seeds, and run correctly without it.
#[test]
fn real_bugs_trigger_and_clean_runs_pass() {
    for w in act_workloads::bugs::all() {
        let clean = w.build(&w.default_params().with_seed(1));
        let out = Machine::new(&clean.program, machine_cfg(1)).run();
        assert!(clean.is_correct(&out), "{} clean run failed: {out}", w.name());

        let mut failed = false;
        for seed in 0..10 {
            let hot = w.build(&Params { seed, ..w.default_params().triggered() });
            let out = Machine::new(&hot.program, machine_cfg(seed)).run();
            if hot.is_failure(&out) {
                failed = true;
                break;
            }
        }
        assert!(failed, "{} never failed under trigger", w.name());
    }
}
