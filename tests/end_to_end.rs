//! Integration tests spanning every crate: the full train → fail → diagnose
//! pipeline on representative bugs (one per bug class), plus the invariants
//! the paper's headline claims rest on.

use act_bench::{act_cfg_for, collect_clean_traces, find_act_failure, train_workload};
use act_core::diagnosis::diagnose;
use act_core::weights::shared;
use act_trace::correct_set::CorrectSet;
use act_trace::input_gen::positive_sequences;
use act_trace::raw::observed_deps;
use act_workloads::registry;

fn diagnose_rank(name: &str) -> Option<usize> {
    let w = registry::by_name(name).expect("workload exists");
    let cfg = act_cfg_for(w.as_ref());
    let trained = train_workload(w.as_ref(), 8, &cfg);
    let store = shared(trained.store.clone());
    let failure = find_act_failure(w.as_ref(), &store, &cfg, 20)?;
    let mut set = CorrectSet::default();
    for t in collect_clean_traces(w.as_ref(), 100..116) {
        for s in positive_sequences(&observed_deps(&t), trained.report.seq_len) {
            set.insert(&s.deps);
        }
    }
    let diag = diagnose(&failure.run, &set);
    let bug = failure.built.bug.as_ref().unwrap();
    diag.rank_where(|s| bug.matches_any(&s.deps))
}

#[test]
fn diagnoses_atomicity_violation_apache() {
    let rank = diagnose_rank("apache").expect("bug found");
    assert!(rank <= 5, "apache rank {rank}");
}

#[test]
fn diagnoses_order_violation_pbzip2() {
    let rank = diagnose_rank("pbzip2").expect("bug found");
    assert!(rank <= 5, "pbzip2 rank {rank}");
}

#[test]
fn diagnoses_semantic_bug_gzip() {
    let rank = diagnose_rank("gzip").expect("bug found");
    assert!(rank <= 5, "gzip rank {rank}");
}

#[test]
fn diagnoses_buffer_overflow_paste() {
    let rank = diagnose_rank("paste").expect("bug found");
    assert!(rank <= 5, "paste rank {rank}");
}

#[test]
fn clean_runs_produce_quiet_testing_mode() {
    // A trained module on a clean deterministic kernel flags (almost)
    // nothing: the overhead story depends on the debug path being cold.
    let w = registry::by_name("fluidanimate").unwrap();
    let cfg = act_cfg_for(w.as_ref());
    let trained = train_workload(w.as_ref(), 8, &cfg);
    let store = shared(trained.store.clone());
    let built = w.build(&w.default_params().with_seed(7));
    let run =
        act_core::diagnosis::run_with_act(&built.program, act_bench::machine_cfg(7), &cfg, &store);
    assert!(run.outcome.completed());
    let preds: u64 = run.module_stats.iter().map(|s| s.predictions).sum();
    let inval: u64 = run.module_stats.iter().map(|s| s.invalids).sum();
    assert!(preds > 0);
    assert!(
        (inval as f64) <= 0.10 * preds as f64,
        "{inval}/{preds} flagged on a clean trained run"
    );
}

#[test]
fn diagnosis_survives_preemptive_scheduling() {
    // §IV-D: context switches save/restore the weight registers. Run the
    // apache failure on a 2-core machine with a preemption quantum — the
    // three threads time-slice, weights migrate, and the bug is still
    // caught.
    use act_sim::config::MachineConfig;

    let w = registry::by_name("apache").unwrap();
    let cfg = act_cfg_for(w.as_ref());
    let trained = train_workload(w.as_ref(), 8, &cfg);
    let store = shared(trained.store.clone());

    let mut failure = None;
    for seed in 0..20u64 {
        let built = w.build(&w.default_params().with_seed(seed).triggered());
        let mcfg = MachineConfig {
            cores: 2,
            preemption_quantum: 5_000,
            seed,
            jitter_ppm: 10_000,
            ..Default::default()
        };
        let run = act_core::diagnosis::run_with_act(&built.program, mcfg, &cfg, &store);
        if built.is_failure(&run.outcome) {
            failure = Some((run, built));
            break;
        }
    }
    let (run, built) = failure.expect("failure manifests under preemption");
    let bug = built.bug.as_ref().unwrap();
    assert!(
        run.debug_position_where(|e| bug.matches_any(&e.deps)).is_some(),
        "bug sequence must be in the debug buffer under preemptive scheduling"
    );
}

#[test]
fn persisted_weights_diagnose_like_fresh_ones() {
    // Binary patching round trip: save the trained store to bytes, load it
    // back, and diagnose with the loaded copy.
    use act_core::weights::WeightStore;

    let w = registry::by_name("gzip").unwrap();
    let cfg = act_cfg_for(w.as_ref());
    let trained = train_workload(w.as_ref(), 8, &cfg);
    let mut buf = Vec::new();
    trained.store.save(&mut buf).unwrap();
    let loaded = WeightStore::load(buf.as_slice()).unwrap();
    assert_eq!(loaded.seq_len(), trained.store.seq_len());

    let store = shared(loaded);
    let failure = find_act_failure(w.as_ref(), &store, &cfg, 10).expect("gzip bug triggers");
    let mut set = CorrectSet::default();
    for t in collect_clean_traces(w.as_ref(), 100..112) {
        for s in positive_sequences(&observed_deps(&t), trained.report.seq_len) {
            set.insert(&s.deps);
        }
    }
    let diag = diagnose(&failure.run, &set);
    let bug = failure.built.bug.as_ref().unwrap();
    assert!(diag.rank_where(|s| bug.matches_any(&s.deps)).is_some_and(|r| r <= 5));
}
